// Determinism proof for the parallel evaluation engine: the full
// simulation roster (plus the RL-like baseline, whose one-time value
// iteration exercises the per-worker amortized-training path) must produce
// bit-identical per-session metrics and aggregates at every thread count.
#include "qoe/eval.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "abr/rl_like.hpp"
#include "bench/bench_common.hpp"
#include "media/quality.hpp"
#include "net/generators.hpp"
#include "predict/oracle.hpp"
#include "util/rng.hpp"

namespace soda::qoe {
namespace {

std::vector<net::ThroughputTrace> MakeCorpus(std::size_t count) {
  Rng rng(91);
  std::vector<net::ThroughputTrace> sessions;
  for (std::size_t i = 0; i < count; ++i) {
    net::RandomWalkConfig walk;
    walk.mean_mbps = rng.Uniform(1.0, 30.0);
    walk.stationary_rel_std = rng.Uniform(0.2, 0.9);
    walk.duration_s = 180.0;
    sessions.push_back(net::RandomWalkTrace(walk, rng));
  }
  return sessions;
}

EvalConfig MakeConfig(const media::BitrateLadder& ladder, int threads) {
  EvalConfig config;
  config.sim.max_buffer_s = 20.0;
  config.sim.live = true;
  config.sim.live_latency_s = 20.0;
  config.threads = threads;
  config.base_seed = 7;
  config.utility = [u = media::NormalizedLogUtility(ladder)](double mbps) {
    return u.At(mbps);
  };
  return config;
}

// Bit-exact equality: == on doubles, deliberately not EXPECT_NEAR.
void ExpectBitIdentical(const EvalResult& reference, const EvalResult& other,
                        const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(reference.controller_name, other.controller_name);
  ASSERT_EQ(reference.per_session.size(), other.per_session.size());
  for (std::size_t k = 0; k < reference.per_session.size(); ++k) {
    const QoeMetrics& a = reference.per_session[k];
    const QoeMetrics& b = other.per_session[k];
    SCOPED_TRACE("session " + std::to_string(k));
    EXPECT_EQ(a.mean_utility, b.mean_utility);
    EXPECT_EQ(a.rebuffer_ratio, b.rebuffer_ratio);
    EXPECT_EQ(a.switch_rate, b.switch_rate);
    EXPECT_EQ(a.startup_ratio, b.startup_ratio);
    EXPECT_EQ(a.qoe, b.qoe);
    EXPECT_EQ(a.segment_count, b.segment_count);
  }
  const auto expect_stats_equal = [](const RunningStats& x,
                                     const RunningStats& y) {
    EXPECT_EQ(x.Count(), y.Count());
    EXPECT_EQ(x.Mean(), y.Mean());
    EXPECT_EQ(x.Variance(), y.Variance());
    EXPECT_EQ(x.Min(), y.Min());
    EXPECT_EQ(x.Max(), y.Max());
    EXPECT_EQ(x.CiHalfWidth95(), y.CiHalfWidth95());
  };
  expect_stats_equal(reference.aggregate.qoe, other.aggregate.qoe);
  expect_stats_equal(reference.aggregate.utility, other.aggregate.utility);
  expect_stats_equal(reference.aggregate.rebuffer_ratio,
                     other.aggregate.rebuffer_ratio);
  expect_stats_equal(reference.aggregate.switch_rate,
                     other.aggregate.switch_rate);
}

TEST(QoeParallel, RosterBitIdenticalAcrossThreadCounts) {
  const auto sessions = MakeCorpus(10);
  const media::BitrateLadder ladder =
      media::YoutubeHfr4kLadder().WithoutTopRungs(2);
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});

  // The section 6.1.2 roster (includes MPC) plus the RL-like baseline: both
  // train/lazily build per-worker state that must not change results.
  std::vector<bench::NamedController> roster = bench::SimulationRoster();
  roster.push_back({"CausalSimRL", [] {
                      return abr::ControllerPtr(
                          std::make_unique<abr::RlLikeController>());
                    }});

  for (const auto& entry : roster) {
    const EvalResult serial = EvaluateController(
        sessions, entry.factory, bench::EmaFactory(), video,
        MakeConfig(ladder, 1));
    EXPECT_EQ(serial.aggregate.SessionCount(), sessions.size());
    for (const int threads : {2, 8}) {
      const EvalResult parallel = EvaluateController(
          sessions, entry.factory, bench::EmaFactory(), video,
          MakeConfig(ladder, threads));
      ExpectBitIdentical(serial, parallel,
                         entry.name + " @" + std::to_string(threads));
    }
  }
}

TEST(QoeParallel, SeededPredictorStreamsAreThreadCountInvariant) {
  const auto sessions = MakeCorpus(8);
  const media::BitrateLadder ladder =
      media::YoutubeHfr4kLadder().WithoutTopRungs(2);
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});

  // A stochastic predictor seeded per session: the noise stream must depend
  // only on (base_seed, session index), so any thread count reproduces it.
  const SeededPredictorFactory noisy_oracle =
      [](const net::ThroughputTrace& trace, std::uint64_t session_seed) {
        predict::OracleConfig oracle;
        oracle.noise_rel_std = 0.3;
        oracle.seed = session_seed;
        return predict::PredictorPtr(
            std::make_unique<predict::OraclePredictor>(trace, oracle));
      };

  const auto make_soda = bench::SimulationRoster().front().factory;
  const EvalResult serial = EvaluateController(
      sessions, make_soda, noisy_oracle, video, MakeConfig(ladder, 1));
  for (const int threads : {2, 8}) {
    const EvalResult parallel = EvaluateController(
        sessions, make_soda, noisy_oracle, video, MakeConfig(ladder, threads));
    ExpectBitIdentical(serial, parallel,
                       "noisy oracle @" + std::to_string(threads));
  }
}

TEST(QoeParallel, SubsetIndicesKeepOrderUnderParallelism) {
  const auto sessions = MakeCorpus(9);
  const media::BitrateLadder ladder =
      media::YoutubeHfr4kLadder().WithoutTopRungs(2);
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});
  const std::vector<std::size_t> indices = {6, 1, 4, 0, 8};

  const auto make_soda = bench::SimulationRoster().front().factory;
  const EvalResult serial =
      EvaluateControllerOn(sessions, indices, make_soda, bench::EmaFactory(),
                           video, MakeConfig(ladder, 1));
  const EvalResult parallel =
      EvaluateControllerOn(sessions, indices, make_soda, bench::EmaFactory(),
                           video, MakeConfig(ladder, 8));
  ASSERT_EQ(serial.per_session.size(), indices.size());
  ExpectBitIdentical(serial, parallel, "subset order");
}

TEST(QoeParallel, SessionSeedIsIndexStableAndDecorrelated) {
  // Depends only on (base_seed, index) …
  EXPECT_EQ(SessionSeed(1, 0), SessionSeed(1, 0));
  EXPECT_EQ(SessionSeed(42, 1000), SessionSeed(42, 1000));
  // … and differs across neighbouring indices and bases.
  EXPECT_NE(SessionSeed(1, 0), SessionSeed(1, 1));
  EXPECT_NE(SessionSeed(1, 5), SessionSeed(2, 5));
}

TEST(QoeParallel, InvalidIndexThrowsAtAnyThreadCount) {
  const auto sessions = MakeCorpus(2);
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});
  const auto make_soda = bench::SimulationRoster().front().factory;
  for (const int threads : {1, 4}) {
    EXPECT_THROW(EvaluateControllerOn(sessions, {0, 5}, make_soda,
                                      bench::EmaFactory(), video,
                                      MakeConfig(ladder, threads)),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace soda::qoe
