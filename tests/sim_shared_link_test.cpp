#include "sim/shared_link.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "abr/throughput_rule.hpp"
#include "core/soda_controller.hpp"
#include "media/video_model.hpp"
#include "predict/ema.hpp"
#include "predict/fixed.hpp"

namespace soda::sim {
namespace {

class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 4.0}),
                           {.segment_seconds = 2.0});
}

SharedLinkPlayer Pinned(media::Rung rung, double fixed_mbps) {
  SharedLinkPlayer player;
  player.controller = std::make_unique<PinnedController>(rung);
  player.predictor = std::make_unique<predict::FixedPredictor>(fixed_mbps);
  return player;
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(JainFairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(JainFairness({1.0, 0.0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(JainFairness({}), 0.0);
  EXPECT_DOUBLE_EQ(JainFairness({0.0, 0.0}), 1.0);
}

TEST(SharedLink, SinglePlayerGetsFullCapacity) {
  std::vector<SharedLinkPlayer> players;
  players.push_back(Pinned(0, 10.0));
  SharedLinkConfig config;
  config.link_capacity_mbps = 10.0;
  config.session_s = 100.0;
  config.rtt_s = 0.0;
  const SharedLinkResult result =
      RunSharedLink(std::move(players), TestVideo(), config);
  ASSERT_EQ(result.logs.size(), 1u);
  // 2 Mb segments at 10 Mb/s -> 0.2 s transfers.
  ASSERT_GT(result.logs[0].SegmentCount(), 10);
  EXPECT_NEAR(result.logs[0].segments[0].download_s, 0.2, 1e-6);
  EXPECT_DOUBLE_EQ(result.logs[0].total_rebuffer_s, 0.0);
}

TEST(SharedLink, TwoConcurrentDownloadersSplitCapacity) {
  std::vector<SharedLinkPlayer> players;
  players.push_back(Pinned(2, 5.0));
  players.push_back(Pinned(2, 5.0));
  SharedLinkConfig config;
  config.link_capacity_mbps = 8.0;  // 4 Mb/s each while both download
  config.session_s = 60.0;
  config.rtt_s = 0.0;
  const SharedLinkResult result =
      RunSharedLink(std::move(players), TestVideo(), config);
  // Both pinned at 4 Mb/s bitrate on a 4 Mb/s fair share: downloads take
  // exactly one segment duration; the first segment of each takes
  // 8 Mb / 4 Mb/s = 2 s.
  ASSERT_GE(result.logs[0].SegmentCount(), 2);
  EXPECT_NEAR(result.logs[0].segments[0].download_s, 2.0, 1e-6);
  EXPECT_NEAR(result.bitrate_fairness, 1.0, 1e-9);
}

TEST(SharedLink, IdlePlayerFreesCapacity) {
  // Player 0 streams the lowest rung (soon buffer-capped and idle);
  // player 1 then sees (nearly) the whole link.
  std::vector<SharedLinkPlayer> players;
  players.push_back(Pinned(0, 5.0));
  players.push_back(Pinned(2, 5.0));
  SharedLinkConfig config;
  config.link_capacity_mbps = 6.0;
  config.session_s = 200.0;
  config.rtt_s = 0.0;
  const SharedLinkResult result =
      RunSharedLink(std::move(players), TestVideo(), config);
  // Player 1 (4 Mb/s bitrate, 2 Mb/s content rate needed... bitrate 4,
  // segment 8 Mb per 2 s) needs 4 Mb/s average: feasible only because
  // player 0 idles most of the time. No starvation for either.
  EXPECT_LT(result.logs[1].total_rebuffer_s, 10.0);
  EXPECT_GT(result.logs[1].SegmentCount(), 50);
  EXPECT_GT(result.logs[0].total_wait_s, 50.0);
}

TEST(SharedLink, OverloadedLinkRebuffers) {
  // Three players pinned to 4 Mb/s bitrate on a 3 Mb/s link: infeasible.
  std::vector<SharedLinkPlayer> players;
  for (int i = 0; i < 3; ++i) players.push_back(Pinned(2, 1.0));
  SharedLinkConfig config;
  config.link_capacity_mbps = 3.0;
  config.session_s = 120.0;
  const SharedLinkResult result =
      RunSharedLink(std::move(players), TestVideo(), config);
  EXPECT_GT(result.mean_rebuffer_s, 20.0);
}

TEST(SharedLink, AdaptiveControllersShareFairly) {
  std::vector<SharedLinkPlayer> players;
  for (int i = 0; i < 3; ++i) {
    SharedLinkPlayer player;
    player.controller = std::make_unique<core::SodaController>();
    player.predictor = std::make_unique<predict::EmaPredictor>();
    players.push_back(std::move(player));
  }
  SharedLinkConfig config;
  config.link_capacity_mbps = 9.0;
  config.session_s = 300.0;
  const SharedLinkResult result =
      RunSharedLink(std::move(players), TestVideo(), config);
  EXPECT_GT(result.bitrate_fairness, 0.9);
  for (const auto& log : result.logs) {
    EXPECT_GT(log.SegmentCount(), 50);
    EXPECT_LT(log.total_rebuffer_s, 15.0);
  }
}

TEST(SharedLink, Validation) {
  std::vector<SharedLinkPlayer> players;
  EXPECT_THROW(
      (void)RunSharedLink(std::move(players), TestVideo(), SharedLinkConfig{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace soda::sim
