#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace soda::core {
namespace {

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

CostModelConfig BaseConfig() {
  CostModelConfig config;
  config.target_buffer_s = 12.0;
  config.max_buffer_s = 20.0;
  config.dt_s = 2.0;
  return config;
}

TEST(CostModel, ValidatesConfig) {
  const auto ladder = Ladder();
  CostModelConfig bad = BaseConfig();
  bad.dt_s = 0.0;
  EXPECT_THROW(CostModel(ladder, bad), std::invalid_argument);
  bad = BaseConfig();
  bad.target_buffer_s = 25.0;  // above max buffer
  EXPECT_THROW(CostModel(ladder, bad), std::invalid_argument);
  bad = BaseConfig();
  bad.weights.epsilon = 0.0;
  EXPECT_THROW(CostModel(ladder, bad), std::invalid_argument);
  bad = BaseConfig();
  bad.weights.beta = -1.0;
  EXPECT_THROW(CostModel(ladder, bad), std::invalid_argument);
}

TEST(CostModel, BufferCostZeroAtTarget) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  EXPECT_DOUBLE_EQ(model.BufferCost(12.0), 0.0);
}

TEST(CostModel, BufferCostAsymmetric) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  // Same absolute deviation costs epsilon times less above the target.
  const double below = model.BufferCost(12.0 - 4.0);
  const double above = model.BufferCost(12.0 + 4.0);
  EXPECT_NEAR(above / below, BaseConfig().weights.epsilon, 1e-12);
  EXPECT_GT(below, 0.0);
}

TEST(CostModel, BufferCostMaxAtEmpty) {
  const auto ladder = Ladder();
  const CostModelConfig config = BaseConfig();
  const CostModel model(ladder, config);
  // Empty buffer: relative deviation 1 plus the full stall barrier.
  const double expected =
      1.0 + config.weights.barrier / config.weights.beta;
  EXPECT_DOUBLE_EQ(model.BufferCost(0.0), expected);
}

TEST(CostModel, BarrierOnlyBelowSafeLevel) {
  const auto ladder = Ladder();
  CostModelConfig with_barrier = BaseConfig();
  with_barrier.weights.barrier = 100.0;
  CostModelConfig without_barrier = BaseConfig();
  without_barrier.weights.barrier = 0.0;
  const CostModel a(ladder, with_barrier);
  const CostModel b(ladder, without_barrier);
  const double safe =
      with_barrier.weights.safe_fraction * with_barrier.target_buffer_s;
  // Above the safe level the two cost models agree exactly.
  for (double x = safe + 0.01; x <= 20.0; x += 0.5) {
    EXPECT_DOUBLE_EQ(a.BufferCost(x), b.BufferCost(x)) << x;
  }
  // Below it the barrier adds cost.
  for (double x = 0.0; x < safe - 0.05; x += 0.3) {
    EXPECT_GT(a.BufferCost(x), b.BufferCost(x)) << x;
  }
}

TEST(CostModel, BarrierValidation) {
  const auto ladder = Ladder();
  CostModelConfig bad = BaseConfig();
  bad.weights.barrier = -1.0;
  EXPECT_THROW((CostModel{ladder, bad}), std::invalid_argument);
  bad = BaseConfig();
  bad.weights.safe_fraction = 1.0;
  EXPECT_THROW((CostModel{ladder, bad}), std::invalid_argument);
}

TEST(CostModel, BufferCostStrictlyDecreasesTowardTargetFromBelow) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  double prev = model.BufferCost(0.0);
  for (double x = 1.0; x <= 12.0; x += 1.0) {
    const double c = model.BufferCost(x);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(CostModel, SwitchCostSymmetricAndZeroForSame) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  EXPECT_DOUBLE_EQ(model.SwitchCost(4.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(model.SwitchCost(4.0, 12.0), model.SwitchCost(12.0, 4.0));
  EXPECT_GT(model.SwitchCost(1.5, 60.0), model.SwitchCost(7.5, 12.0));
}

TEST(CostModel, NextBufferDynamics) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  // x' = x + w*dt/r - dt. With w=12, r=12: x' = x.
  EXPECT_DOUBLE_EQ(model.NextBuffer(10.0, 12.0, 12.0), 10.0);
  // w=24, r=12: downloads 4 s, plays 2 s -> +2.
  EXPECT_DOUBLE_EQ(model.NextBuffer(10.0, 24.0, 12.0), 12.0);
  // w=6, r=12: downloads 1 s, plays 2 s -> -1.
  EXPECT_DOUBLE_EQ(model.NextBuffer(10.0, 6.0, 12.0), 9.0);
}

TEST(CostModel, VideoSecondsDownloaded) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  EXPECT_DOUBLE_EQ(model.VideoSecondsDownloaded(24.0, 12.0), 4.0);
}

TEST(CostModel, IntervalCostComposition) {
  const auto ladder = Ladder();
  CostModelConfig config = BaseConfig();
  config.weights.alpha = 2.0;
  config.weights.beta = 3.0;
  config.weights.gamma = 5.0;
  const CostModel model(ladder, config);
  const double w = 10.0;
  const double r = 7.5;
  const double prev = 12.0;
  const double x_after = 9.0;
  const double smooth_part = 2.0 * model.DistortionAt(r) *
                                 model.VideoSecondsDownloaded(w, r) +
                             3.0 * model.BufferCost(x_after);
  // Switching charges the smooth quadratic term plus the kappa count term.
  const double expected = smooth_part + 5.0 * model.SwitchCost(r, prev) +
                          config.weights.kappa;
  EXPECT_NEAR(model.IntervalCost(w, r, prev, x_after, true), expected, 1e-12);
  // Switch excluded.
  EXPECT_NEAR(model.IntervalCost(w, r, prev, x_after, false), smooth_part,
              1e-12);
  // Staying on the same bitrate charges no kappa.
  EXPECT_NEAR(model.IntervalCost(w, r, r, x_after, true), smooth_part, 1e-12);
}

TEST(CostModel, HigherBitrateLowersDistortionTerm) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  // At the same throughput, picking a higher bitrate both reduces v(r) and
  // downloads less video, so the distortion term strictly decreases.
  double prev = 1e18;
  for (media::Rung r = 0; r < ladder.Count(); ++r) {
    const double bitrate = ladder.BitrateMbps(r);
    const double term =
        model.DistortionAt(bitrate) * model.VideoSecondsDownloaded(20.0, bitrate);
    EXPECT_LT(term, prev);
    prev = term;
  }
}

TEST(CostModel, DistortionModelSelectable) {
  const auto ladder = Ladder();
  CostModelConfig config = BaseConfig();
  config.distortion = media::DistortionModel::kInverse;
  const CostModel inverse(ladder, config);
  config.distortion = media::DistortionModel::kLog;
  const CostModel log_model(ladder, config);
  // Both normalized to 1 at rmin, but differ in between.
  EXPECT_DOUBLE_EQ(inverse.DistortionAt(1.5), 1.0);
  EXPECT_DOUBLE_EQ(log_model.DistortionAt(1.5), 1.0);
  EXPECT_NE(inverse.DistortionAt(7.5), log_model.DistortionAt(7.5));
}

}  // namespace
}  // namespace soda::core
