// Regression pin for the shared_link_scaling sweep shape: the incremental
// hybrid engine must (a) reproduce the reference bitwise at every sweep
// size — checked in every build type — and (b) never be slower per event
// than the reference at any measured n — checked only when
// SODA_PERF_ASSERT is defined (the Release-only soda_perf_tests target;
// debug/sanitizer builds distort the ratio and would flake).
//
// Timing methodology: wall clocks on shared machines are noisy at the
// sub-millisecond scale of the small rosters, so each n runs up to
// kMaxRounds interleaved (reference, incremental) pairs and passes as soon
// as the running minimum of the incremental times drops to or below the
// running minimum of the reference times. Under the true ordering
// inc <= ref this terminates almost immediately; a genuine regression
// (e.g. the pre-fix heap engine's 0.64x at n=100) keeps inc above ref in
// every round and fails deterministically.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "media/video_model.hpp"
#include "predict/fixed.hpp"
#include "sim/shared_link.hpp"

namespace soda::sim {
namespace {

using Clock = std::chrono::steady_clock;

class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

// Mirror of bench_perf_report's scaling roster: O(1) controllers,
// heterogeneous rungs, uniquely staggered joins (no lockstep batches).
std::vector<SharedLinkPlayer> MakeScalingRoster(std::size_t n) {
  std::vector<SharedLinkPlayer> players(n);
  for (std::size_t i = 0; i < n; ++i) {
    players[i].controller =
        std::make_unique<PinnedController>(static_cast<media::Rung>(i % 7));
    players[i].predictor = std::make_unique<predict::FixedPredictor>(1.0);
    players[i].join_s = 0.053 * static_cast<double>(i);
  }
  return players;
}

SharedLinkConfig ScalingConfig(std::size_t n) {
  SharedLinkConfig config;
  config.session_s = n <= 16 ? 960.0 : 240.0;
  config.link_capacity_mbps = 0.7 * static_cast<double>(n);
  return config;
}

double TimeEngine(std::size_t n, SharedLinkEngine engine,
                  SharedLinkResult* out) {
  SharedLinkConfig config = ScalingConfig(n);
  config.engine = engine;
  const media::VideoModel video(media::YoutubeHfr4kLadder(),
                                {.segment_seconds = 2.0});
  const auto start = Clock::now();
  *out = RunSharedLink(MakeScalingRoster(n), video, config);
  const auto end = Clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count();
}

const std::vector<std::size_t>& SweepCounts() {
  static const std::vector<std::size_t> counts = {4, 16, 48, 100, 400};
  return counts;
}

TEST(SharedLinkScaling, IdenticalOutputAtEverySweepSize) {
  const media::VideoModel video(media::YoutubeHfr4kLadder(),
                                {.segment_seconds = 2.0});
  for (const std::size_t n : SweepCounts()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    SharedLinkConfig config = ScalingConfig(n);
    config.engine = SharedLinkEngine::kReference;
    const SharedLinkResult reference =
        RunSharedLink(MakeScalingRoster(n), video, config);
    config.engine = SharedLinkEngine::kIncremental;
    const SharedLinkResult incremental =
        RunSharedLink(MakeScalingRoster(n), video, config);
    ASSERT_EQ(reference.logs.size(), incremental.logs.size());
    EXPECT_EQ(reference.events, incremental.events);
    EXPECT_EQ(reference.bitrate_fairness, incremental.bitrate_fairness);
    EXPECT_EQ(reference.mean_rebuffer_s, incremental.mean_rebuffer_s);
    EXPECT_EQ(reference.mean_switch_rate, incremental.mean_switch_rate);
    for (std::size_t i = 0; i < reference.logs.size(); ++i) {
      const SessionLog& a = reference.logs[i];
      const SessionLog& b = incremental.logs[i];
      ASSERT_EQ(a.segments.size(), b.segments.size()) << "player " << i;
      EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s) << "player " << i;
      EXPECT_EQ(a.total_wait_s, b.total_wait_s) << "player " << i;
      for (std::size_t s = 0; s < a.segments.size(); ++s) {
        ASSERT_EQ(a.segments[s].rung, b.segments[s].rung);
        ASSERT_EQ(a.segments[s].download_s, b.segments[s].download_s);
        ASSERT_EQ(a.segments[s].buffer_after_s, b.segments[s].buffer_after_s);
      }
    }
  }
}

TEST(SharedLinkScaling, IncrementalNeverSlowerPerEvent) {
#ifndef SODA_PERF_ASSERT
  GTEST_SKIP() << "timing assertion only runs in the Release-configured "
                  "soda_perf_tests target (SODA_PERF_ASSERT)";
#else
  constexpr int kMaxRounds = 20;
  for (const std::size_t n : SweepCounts()) {
    SCOPED_TRACE("n=" + std::to_string(n));
    double min_ref = 0.0;
    double min_inc = 0.0;
    bool incremental_won = false;
    for (int round = 0; round < kMaxRounds; ++round) {
      SharedLinkResult scratch;
      // Alternate order so drift hits both engines symmetrically.
      if (round % 2 == 0) {
        const double ref = TimeEngine(n, SharedLinkEngine::kReference,
                                      &scratch);
        const double inc = TimeEngine(n, SharedLinkEngine::kIncremental,
                                      &scratch);
        min_ref = round == 0 ? ref : std::min(min_ref, ref);
        min_inc = round == 0 ? inc : std::min(min_inc, inc);
      } else {
        const double inc = TimeEngine(n, SharedLinkEngine::kIncremental,
                                      &scratch);
        const double ref = TimeEngine(n, SharedLinkEngine::kReference,
                                      &scratch);
        min_ref = std::min(min_ref, ref);
        min_inc = std::min(min_inc, inc);
      }
      if (round >= 1 && min_inc <= min_ref) {
        incremental_won = true;
        break;
      }
    }
    EXPECT_TRUE(incremental_won)
        << "incremental engine slower than reference at n=" << n
        << " across " << kMaxRounds << " rounds: min incremental "
        << min_inc * 1e-6 << " ms vs min reference " << min_ref * 1e-6
        << " ms (event counts are equal, so per-event cost is slower too)";
  }
#endif
}

}  // namespace
}  // namespace soda::sim
