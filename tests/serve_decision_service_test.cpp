// serve::DecisionService: bitwise parity with the library controller
// (CachedDecisionController + EmaPredictor), batch-size/thread-count
// invariance, ingest semantics, multi-tenant isolation, and concurrent
// ingest+decide safety.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cached_controller.hpp"
#include "media/bitrate_ladder.hpp"
#include "media/video_model.hpp"
#include "predict/ema.hpp"
#include "serve/decision_service.hpp"
#include "util/rng.hpp"

namespace soda::serve {
namespace {

constexpr double kSegmentS = 2.0;
constexpr double kMaxBufferS = 20.0;

TenantConfig DefaultTenant(bool quantized) {
  TenantConfig config(media::YoutubeHfr4kLadder());
  config.segment_seconds = kSegmentS;
  config.max_buffer_s = kMaxBufferS;
  config.quantized = quantized;
  return config;
}

// Drives the library path (EmaPredictor + CachedDecisionController) and the
// service with the same feedback stream and asserts every decision is
// bit-identical. This is the daemon's core correctness contract: serving is
// a pure re-packaging of the simulated controller, not a reimplementation
// that may drift.
void RunParityReplay(bool quantized) {
  ServeConfig service_config;
  service_config.shadow_check_fraction = 1.0;
  DecisionService service(service_config);
  const TenantId tenant = service.RegisterTenant(DefaultTenant(quantized));

  core::CachedControllerConfig cc;
  cc.quantize = quantized;
  core::CachedDecisionController controller(cc);
  predict::EmaPredictor predictor;
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  const media::VideoModel video(ladder, {.segment_seconds = kSegmentS});

  const std::string session = "parity-session";
  Rng rng(7);
  media::Rung prev = -1;
  double now_s = 0.0;
  for (int step = 0; step < 400; ++step) {
    // Occasionally leave the servable range to exercise the fallback on
    // both sides (buffer above the table's max).
    const double buffer_s =
        step % 37 == 0 ? kMaxBufferS + 3.0 : rng.NextDouble() * kMaxBufferS;

    abr::Context context;
    context.now_s = now_s;
    context.buffer_s = buffer_s;
    context.prev_rung = prev;
    context.segment_index = step;
    context.playing = true;
    context.max_buffer_s = kMaxBufferS;
    context.video = &video;
    context.predictor = &predictor;
    const media::Rung expected = controller.ChooseRung(context);

    DecisionRequest request;
    request.tenant = tenant;
    request.session_id = session;
    request.buffer_s = buffer_s;
    const Decision got = service.DecideOne(request);

    ASSERT_EQ(got.rung, expected) << "step " << step << " buffer " << buffer_s;
    if (got.shadow_checked) {
      EXPECT_FALSE(got.shadow_mismatch) << "step " << step;
    }

    // Feed the identical download observation to both predictors.
    const double mbps = 0.5 + 40.0 * rng.NextDouble();
    const double duration_s = 0.3 + 3.0 * rng.NextDouble();
    const double megabits = mbps * duration_s;
    predictor.Observe({now_s, duration_s, megabits});
    SessionEvent event;
    event.type = EventType::kSegmentDownloaded;
    event.tenant = tenant;
    event.session_id = session;
    event.now_s = now_s;
    event.rung = expected;
    event.duration_s = duration_s;
    event.megabits = megabits;
    service.Ingest(event);

    prev = expected;
    now_s += duration_s;
  }
}

TEST(DecisionService, QuantizedParityWithLibraryController) {
  RunParityReplay(/*quantized=*/true);
}

TEST(DecisionService, ExactParityWithLibraryController) {
  RunParityReplay(/*quantized=*/false);
}

TEST(DecisionService, ColdStartServesDefaultEstimate) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));
  DecisionRequest request;
  request.tenant = tenant;
  request.session_id = "never-seen";
  request.buffer_s = 10.0;
  const Decision d = service.DecideOne(request);
  EXPECT_TRUE(d.from_table);
  EXPECT_FLOAT_EQ(d.predicted_mbps, 1.0f);  // predict::kDefaultColdStartMbps
  // Decisions never create sessions; only ingest does.
  EXPECT_EQ(service.ActiveSessions(), 0u);
}

TEST(DecisionService, BufferOutOfRangeFallsBackToSolver) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));
  DecisionRequest request;
  request.tenant = tenant;
  request.session_id = "s";
  request.buffer_s = kMaxBufferS + 5.0;
  const Decision d = service.DecideOne(request);
  EXPECT_TRUE(d.solver_fallback);
  EXPECT_FALSE(d.from_table);
  EXPECT_GE(d.rung, 0);
  EXPECT_LT(d.rung, media::YoutubeHfr4kLadder().Count());
}

TEST(DecisionService, StartupClearsPreviousRungButKeepsEma) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));

  SessionEvent down;
  down.type = EventType::kSegmentDownloaded;
  down.tenant = tenant;
  down.session_id = "s";
  down.rung = 4;
  down.duration_s = 2.0;
  down.megabits = 40.0;  // 20 Mb/s
  service.Ingest(down);

  DecisionRequest request;
  request.tenant = tenant;
  request.session_id = "s";
  request.buffer_s = 12.0;
  const Decision before = service.DecideOne(request);
  EXPECT_GT(before.predicted_mbps, 1.0f);  // EMA has seen 20 Mb/s

  SessionEvent startup;
  startup.type = EventType::kStartup;
  startup.tenant = tenant;
  startup.session_id = "s";
  service.Ingest(startup);
  const Decision after = service.DecideOne(request);
  // Network knowledge survives the restart...
  EXPECT_EQ(after.predicted_mbps, before.predicted_mbps);
  // ...and the decision now prices no previous rung: it must equal a fresh
  // session's decision under the same EMA state.
  SessionEvent fresh = down;
  fresh.session_id = "fresh";
  fresh.rung = -1;  // no committed rung
  service.Ingest(fresh);
  DecisionRequest fresh_request = request;
  fresh_request.session_id = "fresh";
  EXPECT_EQ(after.rung, service.DecideOne(fresh_request).rung);
}

TEST(DecisionService, ThroughputSamplesMoveTheEstimate) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));
  SessionEvent sample;
  sample.type = EventType::kThroughputSample;
  sample.tenant = tenant;
  sample.session_id = "s";
  sample.duration_s = 4.0;
  sample.mbps = 30.0;
  service.Ingest(sample);
  DecisionRequest request;
  request.tenant = tenant;
  request.session_id = "s";
  request.buffer_s = 10.0;
  const Decision d = service.DecideOne(request);
  EXPECT_GT(d.predicted_mbps, 5.0f);
  EXPECT_LE(d.predicted_mbps, 30.0f);
}

// The determinism contract: per-session results are bit-identical for any
// batch partitioning and any thread count.
TEST(DecisionService, ResultsInvariantAcrossBatchSizesAndThreads) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));

  constexpr int kSessions = 64;
  std::vector<std::string> ids;
  Rng rng(11);
  for (int i = 0; i < kSessions; ++i) {
    ids.push_back("sess-" + std::to_string(i));
    // Distinct histories per session.
    const int events = 1 + static_cast<int>(rng.UniformInt(5));
    for (int e = 0; e < events; ++e) {
      SessionEvent down;
      down.type = EventType::kSegmentDownloaded;
      down.tenant = tenant;
      down.session_id = ids.back();
      down.rung = static_cast<media::Rung>(rng.UniformInt(6));
      down.duration_s = 0.5 + 2.0 * rng.NextDouble();
      down.megabits = down.duration_s * (1.0 + 50.0 * rng.NextDouble());
      service.Ingest(down);
    }
  }

  std::vector<DecisionRequest> requests(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    requests[i].tenant = tenant;
    requests[i].session_id = ids[i];
    requests[i].buffer_s = 0.3 * static_cast<double>(i);
  }

  std::vector<Decision> baseline(kSessions);
  service.DecideBatch(requests, baseline, /*threads=*/1);

  for (const int threads : {1, 2, 4, 7}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{kSessions}}) {
      std::vector<Decision> out(kSessions);
      for (std::size_t begin = 0; begin < requests.size(); begin += batch) {
        const std::size_t n = std::min(batch, requests.size() - begin);
        service.DecideBatch(
            std::span<const DecisionRequest>(requests).subspan(begin, n),
            std::span<Decision>(out).subspan(begin, n), threads);
      }
      for (int i = 0; i < kSessions; ++i) {
        ASSERT_EQ(out[i].rung, baseline[i].rung)
            << "i=" << i << " threads=" << threads << " batch=" << batch;
        ASSERT_EQ(out[i].predicted_mbps, baseline[i].predicted_mbps);
        ASSERT_EQ(out[i].shadow_checked, baseline[i].shadow_checked)
            << "shadow sampling must not depend on batching";
      }
    }
  }
}

TEST(DecisionService, TenantsAreIsolated) {
  DecisionService service;
  const TenantId a = service.RegisterTenant(DefaultTenant(true));
  TenantConfig small(media::BitrateLadder({0.5, 2.0, 8.0}));
  small.segment_seconds = kSegmentS;
  small.max_buffer_s = kMaxBufferS;
  const TenantId b = service.RegisterTenant(small);
  EXPECT_EQ(service.TenantCount(), 2u);

  // The same session id in both tenants, with very different throughput.
  for (const auto& [tenant, mbps] : {std::pair{a, 50.0}, std::pair{b, 1.0}}) {
    SessionEvent sample;
    sample.type = EventType::kThroughputSample;
    sample.tenant = tenant;
    sample.session_id = "shared-id";
    sample.duration_s = 10.0;
    sample.mbps = mbps;
    service.Ingest(sample);
  }
  EXPECT_EQ(service.ActiveSessions(), 2u);

  DecisionRequest request;
  request.session_id = "shared-id";
  request.buffer_s = 12.0;
  request.tenant = a;
  const Decision da = service.DecideOne(request);
  request.tenant = b;
  const Decision db = service.DecideOne(request);
  EXPECT_GT(da.predicted_mbps, 10.0f);
  EXPECT_LT(db.predicted_mbps, 2.0f);
  EXPECT_LT(db.rung, 3);  // within the small ladder

  EXPECT_TRUE(service.RemoveSession(a, "shared-id"));
  EXPECT_FALSE(service.RemoveSession(a, "shared-id"));
  EXPECT_EQ(service.ActiveSessions(), 1u);
}

TEST(DecisionService, TenantsShareTablesByGeometry) {
  core::ClearDecisionTableCacheForTesting();
  core::ClearQuantizedTableCacheForTesting();
  DecisionService service;
  const TenantId a = service.RegisterTenant(DefaultTenant(true));
  const TenantId b = service.RegisterTenant(DefaultTenant(true));
  EXPECT_EQ(service.Tables(a).exact.get(), service.Tables(b).exact.get());
  EXPECT_EQ(service.Tables(a).quantized.get(),
            service.Tables(b).quantized.get());
  EXPECT_EQ(core::DecisionTableCacheSize(), 1u);
  EXPECT_EQ(core::QuantizedTableCacheSize(), 1u);
}

TEST(DecisionService, UnknownTenantThrows) {
  DecisionService service;
  DecisionRequest request;
  request.tenant = 99;
  request.session_id = "s";
  EXPECT_THROW((void)service.DecideOne(request), std::invalid_argument);
}

// Concurrent ingest and decide across many sessions: exercises the shard
// locking under asan/tsan. Decisions stay within the ladder throughout.
TEST(DecisionService, ConcurrentIngestAndDecide) {
  DecisionService service;
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));
  constexpr int kWriters = 3;
  constexpr int kSessionsPerWriter = 16;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int wr = 0; wr < kWriters; ++wr) {
    writers.emplace_back([&, wr] {
      Rng rng(100 + static_cast<std::uint64_t>(wr));
      for (int iter = 0; iter < 300; ++iter) {
        SessionEvent down;
        down.type = EventType::kSegmentDownloaded;
        down.tenant = tenant;
        const std::string id =
            "w" + std::to_string(wr) + "-" +
            std::to_string(rng.UniformInt(kSessionsPerWriter));
        down.session_id = id;
        down.rung = static_cast<media::Rung>(rng.UniformInt(6));
        down.duration_s = 0.5 + rng.NextDouble();
        down.megabits = down.duration_s * (1.0 + 30.0 * rng.NextDouble());
        service.Ingest(down);
      }
    });
  }
  std::thread reader([&] {
    Rng rng(999);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<DecisionRequest> requests(32);
      std::vector<std::string> ids(32);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ids[i] = "w" + std::to_string(rng.UniformInt(kWriters)) + "-" +
                 std::to_string(rng.UniformInt(kSessionsPerWriter));
        requests[i].tenant = tenant;
        requests[i].session_id = ids[i];
        requests[i].buffer_s = rng.NextDouble() * kMaxBufferS;
      }
      std::vector<Decision> out(requests.size());
      service.DecideBatch(requests, out, 2);
      for (const Decision& d : out) {
        ASSERT_GE(d.rung, 0);
        ASSERT_LT(d.rung, 6);
      }
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_LE(service.ActiveSessions(),
            static_cast<std::size_t>(kWriters * kSessionsPerWriter));
}

TEST(DecisionService, TtlEvictsIdleSessionsUnderChurn) {
  ServeConfig config;
  config.session_shards = 1;  // one shard so the sweep cadence is predictable
  config.session_ttl_s = 30.0;
  DecisionService service(config);
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));

  const auto sample = [&](const std::string& id, double now_s) {
    SessionEvent event;
    event.type = EventType::kThroughputSample;
    event.tenant = tenant;
    event.session_id = id;
    event.now_s = now_s;
    event.duration_s = 1.0;
    event.mbps = 8.0;
    service.Ingest(event);
  };

  // A churning population: generation g's sessions all go idle before
  // generation g+2 arrives, so eviction must hold the live set near one
  // generation instead of accumulating all of them.
  constexpr int kGenerations = 20;
  constexpr int kPerGeneration = 100;
  for (int g = 0; g < kGenerations; ++g) {
    const double now_s = g * 40.0;  // > TTL apart
    for (int i = 0; i < kPerGeneration; ++i) {
      sample("gen-" + std::to_string(g) + "-" + std::to_string(i), now_s);
    }
  }
  // Without eviction this would be kGenerations * kPerGeneration = 2000;
  // the amortized sweep (every ~quarter of the live map) bounds the live
  // set to a few generations.
  EXPECT_LE(service.ActiveSessions(), 4u * kPerGeneration);

  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snapshot.counters.at("serve.sessions_evicted"),
            static_cast<std::uint64_t>((kGenerations - 5) * kPerGeneration));

  // A session that keeps reporting survives every sweep.
  DecisionService fresh(config);
  const TenantId t2 = fresh.RegisterTenant(DefaultTenant(true));
  const auto keepalive = [&](double now_s) {
    SessionEvent event;
    event.type = EventType::kThroughputSample;
    event.tenant = t2;
    event.session_id = "keepalive";
    event.now_s = now_s;
    event.duration_s = 1.0;
    event.mbps = 8.0;
    fresh.Ingest(event);
  };
  for (int step = 0; step < 100; ++step) keepalive(step * 10.0);
  EXPECT_EQ(fresh.ActiveSessions(), 1u);
}

// Regression: the ingest-time sweep is amortized against a shard's own
// ingest count, so a shard whose clients all vanish never sweeps itself —
// a burst followed by silence used to pin those sessions forever. The
// explicit SweepIdleSessions API must reclaim them, with an exact
// "serve.sessions_evicted" count.
TEST(DecisionService, SweepIdleSessionsReclaimsQuiescentShards) {
  ServeConfig config;
  config.session_shards = 8;  // spread the burst across several shards
  config.session_ttl_s = 30.0;
  DecisionService service(config);
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));

  const auto sample = [&](const std::string& id, double now_s) {
    SessionEvent event;
    event.type = EventType::kThroughputSample;
    event.tenant = tenant;
    event.session_id = id;
    event.now_s = now_s;
    event.duration_s = 1.0;
    event.mbps = 8.0;
    service.Ingest(event);
  };

  constexpr int kBurst = 50;  // below the per-shard amortized-sweep floor
  for (int i = 0; i < kBurst; ++i) sample("burst-" + std::to_string(i), 0.0);
  ASSERT_EQ(service.ActiveSessions(), static_cast<std::size_t>(kBurst));

  // Before anything expires the sweep is a no-op.
  EXPECT_EQ(service.SweepIdleSessions(20.0), 0u);
  EXPECT_EQ(service.ActiveSessions(), static_cast<std::size_t>(kBurst));

  // One session reports again and stays within TTL of the sweep time.
  sample("burst-0", 90.0);

  // Then: total silence. No further ingests means the amortized sweep can
  // never fire, no matter how stale the rest of the burst gets — only the
  // explicit sweep reclaims it, evicting everything but the fresh session
  // and counting each eviction exactly once.
  const std::uint64_t before = obs::MetricsRegistry::Global()
                                   .Snapshot()
                                   .counters.at("serve.sessions_evicted");
  EXPECT_EQ(service.SweepIdleSessions(100.0),
            static_cast<std::size_t>(kBurst - 1));
  EXPECT_EQ(service.ActiveSessions(), 1u);
  const std::uint64_t after = obs::MetricsRegistry::Global()
                                  .Snapshot()
                                  .counters.at("serve.sessions_evicted");
  EXPECT_EQ(after - before, static_cast<std::uint64_t>(kBurst - 1));

  // Idempotent once the map is clean (the survivor is still within TTL of
  // the advanced shard clock only until it ages out).
  EXPECT_EQ(service.SweepIdleSessions(100.0), 0u);
  EXPECT_EQ(service.SweepIdleSessions(1000.0), 1u);
  EXPECT_EQ(service.ActiveSessions(), 0u);

  // TTL disabled: the explicit sweep is a guaranteed no-op.
  ServeConfig off;
  off.session_ttl_s = 0.0;
  DecisionService no_ttl(off);
  const TenantId t2 = no_ttl.RegisterTenant(DefaultTenant(true));
  SessionEvent event;
  event.type = EventType::kThroughputSample;
  event.tenant = t2;
  event.session_id = "stays";
  event.now_s = 0.0;
  event.duration_s = 1.0;
  event.mbps = 8.0;
  no_ttl.Ingest(event);
  EXPECT_EQ(no_ttl.SweepIdleSessions(1e9), 0u);
  EXPECT_EQ(no_ttl.ActiveSessions(), 1u);
}

TEST(DecisionService, TtlZeroNeverEvicts) {
  ServeConfig config;
  config.session_shards = 1;
  config.session_ttl_s = 0.0;
  DecisionService service(config);
  const TenantId tenant = service.RegisterTenant(DefaultTenant(true));
  for (int i = 0; i < 200; ++i) {
    const std::string id = "s-" + std::to_string(i);
    SessionEvent event;
    event.type = EventType::kThroughputSample;
    event.tenant = tenant;
    event.session_id = id;
    event.now_s = i * 1000.0;  // ancient gaps, but TTL is off
    event.duration_s = 1.0;
    event.mbps = 8.0;
    service.Ingest(event);
  }
  EXPECT_EQ(service.ActiveSessions(), 200u);
}

TEST(DecisionService, RejectsNegativeTtl) {
  ServeConfig config;
  config.session_ttl_s = -1.0;
  EXPECT_THROW(DecisionService service(config), std::invalid_argument);
}

}  // namespace
}  // namespace soda::serve
