#include "core/soda_controller.hpp"

#include <gtest/gtest.h>

#include "abr/hyb.hpp"
#include "core/decision_map.hpp"
#include "net/generators.hpp"
#include "predict/ema.hpp"
#include "sim/session.hpp"
#include "test_helpers.hpp"

namespace soda::core {
namespace {

using soda::testing::ContextFixture;

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

TEST(SodaController, ConfigValidation) {
  SodaConfig bad_horizon;
  bad_horizon.horizon = 0;
  EXPECT_THROW((SodaController{bad_horizon}), std::invalid_argument);
  SodaConfig bad_target;
  bad_target.target_fraction = 1.5;
  EXPECT_THROW((SodaController{bad_target}), std::invalid_argument);
}

TEST(SodaController, SteadyStateHoldsRung) {
  ContextFixture fx(Ladder());
  SodaController soda;
  fx.SetThroughput(12.0);
  EXPECT_EQ(soda.ChooseRung(fx.Make(12.0, 3)), 3);
}

TEST(SodaController, ThroughputCapLimitsFirstDecision) {
  ContextFixture fx(Ladder());
  SodaController soda;
  fx.SetThroughput(8.0);
  // Below the target buffer the section 5.1 cap engages: the committed
  // rung can be at most min{r >= 8} = 12 Mb/s (rung 3), whatever the
  // planner wants.
  const media::Rung capped = soda.ChooseRung(fx.Make(5.0, 5));
  EXPECT_LE(capped, 3);
  // Above the target the cap is relaxed (overrunning one interval is
  // harmless with an ample buffer) and the planner may hold a high rung.
  const media::Rung uncapped = soda.ChooseRung(fx.Make(19.0, 5));
  EXPECT_GE(uncapped, capped);
}

TEST(SodaController, CapCanBeDisabled) {
  ContextFixture fx(Ladder());
  // Extremely sticky weights so the planner holds the previous (top) rung;
  // then the only difference between the two controllers is the cap.
  SodaConfig sticky;
  sticky.weights.gamma = 5000.0;
  sticky.weights.kappa = 50.0;
  sticky.weights.beta = 0.1;
  sticky.weights.barrier = 0.0;
  SodaConfig sticky_uncapped = sticky;
  sticky_uncapped.throughput_cap = false;
  SodaController capped(sticky);
  SodaController uncapped(sticky_uncapped);
  fx.SetThroughput(8.0);
  // Low buffer: the cap binds (min{r >= 8} = rung 3).
  EXPECT_LE(capped.ChooseRung(fx.Make(5.0, 5)), 3);
  EXPECT_EQ(uncapped.ChooseRung(fx.Make(5.0, 5)), 5);
}

TEST(SodaController, DecisionMonotoneInBufferPureObjective) {
  // Under the pure Equation-2 objective (no fixed per-switch cost, no
  // terminal tail) the chosen rung is non-decreasing in buffer level (the
  // Fig. 5 structure).
  ContextFixture fx(Ladder());
  SodaConfig pure;
  pure.weights.kappa = 0.0;
  pure.tail_intervals = 0.0;
  SodaController soda(pure);
  fx.SetThroughput(10.0);
  media::Rung last = 0;
  for (double buffer = 0.5; buffer <= 19.5; buffer += 0.5) {
    const media::Rung r = soda.ChooseRung(fx.Make(buffer, 2));
    EXPECT_GE(r, last);
    last = r;
  }
}

TEST(SodaController, DecisionApproximatelyMonotoneWithDefaults) {
  // The default fixed per-switch cost introduces hysteresis plateaus, so
  // exact monotonicity can break by at most one rung near thresholds.
  ContextFixture fx(Ladder());
  SodaController soda;
  fx.SetThroughput(10.0);
  media::Rung last = 0;
  for (double buffer = 0.5; buffer <= 19.5; buffer += 0.5) {
    const media::Rung r = soda.ChooseRung(fx.Make(buffer, 2));
    EXPECT_GE(r, last - 1);
    last = std::max(last, r);
  }
}

TEST(SodaController, LowBufferDefendsAgainstRebuffer) {
  ContextFixture fx(Ladder());
  SodaController soda;
  fx.SetThroughput(10.0);
  // From a near-empty buffer at a high previous rung, SODA drops to a
  // refilling rung: one whose download rate comfortably exceeds real time
  // (bitrate well under the 10 Mb/s forecast).
  const media::Rung r = soda.ChooseRung(fx.Make(0.5, 4));
  EXPECT_LE(r, 1);
  // And it never drops below what is needed: with a healthy buffer it does
  // not panic.
  EXPECT_GE(soda.ChooseRung(fx.Make(12.0, 4)), 2);
}

TEST(SodaController, HorizonLimitedToTenSeconds) {
  // With 4-second segments the configured horizon of 5 must be clamped to
  // floor(10 / 4) = 2 intervals.
  ContextFixture fx(Ladder(), /*segment_seconds=*/4.0);
  SodaConfig config;
  config.horizon = 5;
  SodaController soda(config);
  fx.SetThroughput(10.0);
  (void)soda.ChooseRung(fx.Make(10.0, 2));
  // A 2-step monotone search over 6 rungs evaluates at most
  // 2 * C(7,2) = 42 sequences (up and down).
  EXPECT_LE(soda.LastSequencesEvaluated(), 60);
}

TEST(SodaController, SequenceBudgetMatchesPaperClaim) {
  ContextFixture fx(Ladder());
  SodaController soda;
  fx.SetThroughput(10.0);
  (void)soda.ChooseRung(fx.Make(10.0, 2));
  // Section 5.3: "at most around 200 bitrate sequences".
  EXPECT_GT(soda.LastSequencesEvaluated(), 20);
  EXPECT_LE(soda.LastSequencesEvaluated(), 600);
}

TEST(SodaController, AdaptsModelToLadderChange) {
  SodaController soda;
  ContextFixture youtube(Ladder());
  youtube.SetThroughput(10.0);
  (void)soda.ChooseRung(youtube.Make(10.0, 2));
  // Same controller instance now sees the production ladder.
  ContextFixture prime(media::PrimeVideoProductionLadder());
  prime.SetThroughput(3.0);
  const media::Rung r = soda.ChooseRung(prime.Make(12.0, 5));
  EXPECT_TRUE(media::PrimeVideoProductionLadder().IsValidRung(r));
}

TEST(SodaController, SwitchingWeightReducesSwitchesEndToEnd) {
  // Run the same volatile session with gamma small vs large and count
  // switches: the smoothness knob must work end to end.
  Rng rng(21);
  net::RandomWalkConfig walk;
  walk.mean_mbps = 15.0;
  walk.stationary_rel_std = 0.8;
  walk.duration_s = 400.0;
  const auto trace = net::RandomWalkTrace(walk, rng);
  const media::VideoModel video(Ladder(), {.segment_seconds = 2.0});
  sim::SimConfig sim_config;
  sim_config.rtt_s = 0.0;

  auto run_with_gamma = [&](double gamma) {
    SodaConfig config;
    config.weights.gamma = gamma;
    SodaController controller(config);
    predict::EmaPredictor predictor;
    const sim::SessionLog log =
        sim::RunSession(trace, controller, predictor, video, sim_config);
    return log.SwitchCount();
  };
  const int switchy = run_with_gamma(0.1);
  const int smooth = run_with_gamma(500.0);
  EXPECT_LT(smooth, switchy);
}

TEST(DecisionMap, ShapeMatchesFig5) {
  CostModelConfig mc;
  mc.target_buffer_s = 12.0;
  mc.max_buffer_s = 20.0;
  mc.dt_s = 2.0;
  const auto ladder = Ladder();
  const CostModel model(ladder, mc);
  DecisionMapConfig config;
  config.buffer_points = 20;
  config.throughput_points = 24;
  const DecisionMap map = ComputeDecisionMap(model, config);
  ASSERT_EQ(map.grid.size(), 24u);
  ASSERT_EQ(map.grid[0].size(), 20u);

  // 1) Rung is non-decreasing in throughput at mid buffer.
  const std::size_t mid_buffer = 10;
  double last = -1.0;
  for (std::size_t t = 0; t < map.grid.size(); ++t) {
    const double v = map.grid[t][mid_buffer];
    if (std::isnan(v)) continue;
    EXPECT_GE(v + 1e-9, last);
    last = v;
  }

  // 2) The blank (no-download) region exists at high throughput + full
  // buffer and only there.
  bool any_nan = false;
  for (std::size_t t = 0; t < map.grid.size(); ++t) {
    for (std::size_t b = 0; b < map.grid[t].size(); ++b) {
      if (std::isnan(map.grid[t][b])) {
        any_nan = true;
        // NaN only plausible at nearly full buffer.
        EXPECT_GT(map.buffer_axis_s[b], 0.7 * mc.max_buffer_s);
      }
    }
  }
  EXPECT_TRUE(any_nan);
}

TEST(DecisionMap, ParallelFillIsBitIdentical) {
  CostModelConfig mc;
  mc.target_buffer_s = 12.0;
  mc.max_buffer_s = 20.0;
  mc.dt_s = 2.0;
  // CostModel stores a pointer to the ladder: it must outlive the model
  // (passing the Ladder() temporary directly would dangle).
  const auto ladder = Ladder();
  const CostModel model(ladder, mc);
  DecisionMapConfig config;
  config.buffer_points = 16;
  config.throughput_points = 18;
  config.threads = 1;
  const DecisionMap serial = ComputeDecisionMap(model, config);
  for (const int threads : {2, 4, 0}) {
    config.threads = threads;
    const DecisionMap parallel = ComputeDecisionMap(model, config);
    ASSERT_EQ(parallel.grid.size(), serial.grid.size());
    for (std::size_t t = 0; t < serial.grid.size(); ++t) {
      for (std::size_t b = 0; b < serial.grid[t].size(); ++b) {
        const double want = serial.grid[t][b];
        const double got = parallel.grid[t][b];
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got)) << "t=" << t << " b=" << b;
        } else {
          EXPECT_EQ(got, want) << "t=" << t << " b=" << b;
        }
      }
    }
  }
}

TEST(DecisionMap, ValidatesConfig) {
  CostModelConfig mc;
  mc.target_buffer_s = 12.0;
  mc.max_buffer_s = 20.0;
  const auto ladder = Ladder();
  const CostModel model(ladder, mc);
  DecisionMapConfig bad;
  bad.buffer_points = 1;
  EXPECT_THROW((void)ComputeDecisionMap(model, bad), std::invalid_argument);
}

TEST(SodaController, EndToEndSwitchesLessThanHyb) {
  // Smoke test of the headline property: on a volatile trace SODA switches
  // far less than the buffer-greedy HYB heuristic (the paper measures HYB
  // switching up to 215% more, i.e. > 3x).
  Rng rng(5);
  net::RandomWalkConfig walk;
  walk.mean_mbps = 20.0;
  walk.stationary_rel_std = 0.8;
  walk.reversion_rate = 0.15;
  walk.duration_s = 600.0;
  const auto trace = net::RandomWalkTrace(walk, rng);
  const media::VideoModel video(Ladder(), {.segment_seconds = 2.0});
  sim::SimConfig sim_config;

  SodaController soda;
  predict::EmaPredictor soda_predictor;
  const sim::SessionLog soda_log =
      sim::RunSession(trace, soda, soda_predictor, video, sim_config);

  abr::HybController hyb;
  predict::EmaPredictor hyb_predictor;
  const sim::SessionLog hyb_log =
      sim::RunSession(trace, hyb, hyb_predictor, video, sim_config);

  ASSERT_GT(soda_log.SegmentCount(), 100);
  ASSERT_GT(hyb_log.SegmentCount(), 100);
  const double soda_switch_rate =
      static_cast<double>(soda_log.SwitchCount()) / soda_log.SegmentCount();
  const double hyb_switch_rate =
      static_cast<double>(hyb_log.SwitchCount()) / hyb_log.SegmentCount();
  EXPECT_LT(soda_switch_rate, hyb_switch_rate * 0.6);
}

}  // namespace
}  // namespace soda::core
