#include "tools/cli_args.hpp"

#include <gtest/gtest.h>

namespace soda::tools {
namespace {

CliArgs Parse(std::vector<std::string> argv_strings,
              const std::set<std::string>& flags,
              const std::set<std::string>& booleans = {}) {
  std::vector<char*> argv;
  argv_strings.insert(argv_strings.begin(), "prog");
  argv.reserve(argv_strings.size());
  for (auto& s : argv_strings) argv.push_back(s.data());
  return CliArgs(static_cast<int>(argv.size()), argv.data(), flags, booleans);
}

TEST(CliArgs, ParsesValuesAndBooleans) {
  const CliArgs args = Parse({"--controller", "soda", "--timeline"},
                             {"controller"}, {"timeline"});
  EXPECT_TRUE(args.Has("controller"));
  EXPECT_EQ(args.Get("controller", "x"), "soda");
  EXPECT_TRUE(args.Has("timeline"));
  EXPECT_FALSE(args.Has("csv"));
}

TEST(CliArgs, Defaults) {
  const CliArgs args = Parse({}, {"buffer"});
  EXPECT_EQ(args.Get("buffer", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.GetDouble("buffer", 20.0), 20.0);
  EXPECT_EQ(args.GetLong("buffer", 7), 7);
}

TEST(CliArgs, NumericConversion) {
  const CliArgs args = Parse({"--buffer", "15.5", "--count", "12"},
                             {"buffer", "count"});
  EXPECT_DOUBLE_EQ(args.GetDouble("buffer", 0.0), 15.5);
  EXPECT_EQ(args.GetLong("count", 0), 12);
}

TEST(CliArgs, UnknownFlagThrows) {
  EXPECT_THROW(Parse({"--bogus", "1"}, {"buffer"}), std::invalid_argument);
}

TEST(CliArgs, MissingValueThrows) {
  EXPECT_THROW(Parse({"--buffer"}, {"buffer"}), std::invalid_argument);
}

TEST(CliArgs, NonFlagTokenThrows) {
  EXPECT_THROW(Parse({"buffer", "5"}, {"buffer"}), std::invalid_argument);
}

}  // namespace
}  // namespace soda::tools
