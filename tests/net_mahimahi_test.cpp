#include "net/mahimahi.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "net/trace_io.hpp"

namespace soda::net {
namespace {

constexpr double kPacketMb = kMahimahiMtuBytes * 8.0 / 1e6;  // 0.012 Mb

TEST(Mahimahi, ParsesUniformSchedule) {
  // One packet per millisecond for one second = 1000 * 12 kbit = 12 Mb/s.
  std::string text;
  for (int ms = 1; ms <= 1000; ++ms) {
    text += std::to_string(ms) + "\n";
  }
  const ThroughputTrace trace = ParseMahimahi(text);
  EXPECT_NEAR(trace.MeanMbps(), 1000.0 * kPacketMb, 0.2);
}

TEST(Mahimahi, BinsCaptureRateChanges) {
  // Dense deliveries in the first second, sparse in the second.
  std::string text;
  for (int ms = 0; ms < 1000; ms += 2) text += std::to_string(ms) + "\n";
  for (int ms = 1000; ms < 2000; ms += 100) text += std::to_string(ms) + "\n";
  const ThroughputTrace trace = ParseMahimahi(text, {.bin_seconds = 1.0});
  EXPECT_GT(trace.ThroughputAt(0.5), trace.ThroughputAt(1.5) * 10.0);
}

TEST(Mahimahi, LoopsScheduleToRequestedDuration) {
  std::string text = "500\n1000\n";  // 2 packets per second period
  MahimahiOptions options;
  options.duration_s = 10.0;
  const ThroughputTrace trace = ParseMahimahi(text, options);
  EXPECT_NEAR(trace.DurationS(), 10.0, 1e-9);
  // Every second delivers ~2 packets.
  EXPECT_NEAR(trace.MeanMbps(), 2.0 * kPacketMb, kPacketMb);
}

TEST(Mahimahi, SkipsCommentsAndBlanks) {
  const ThroughputTrace trace =
      ParseMahimahi("# header\n\n 100 \n200\n", {.bin_seconds = 0.2});
  EXPECT_GT(trace.MeanMbps(), 0.0);
}

TEST(Mahimahi, RejectsMalformedInput) {
  EXPECT_THROW((void)ParseMahimahi(""), std::runtime_error);
  EXPECT_THROW((void)ParseMahimahi("abc\n"), std::runtime_error);
  EXPECT_THROW((void)ParseMahimahi("-5\n"), std::runtime_error);
  EXPECT_THROW((void)ParseMahimahi("100\n50\n"), std::runtime_error);
}

TEST(Mahimahi, RoundTripPreservesMeanRate) {
  const ThroughputTrace original = StepTrace({2.0, 6.0, 4.0}, 10.0);
  const std::string rendered = ToMahimahi(original, 1.0);
  MahimahiOptions options;
  options.duration_s = original.DurationS();
  const ThroughputTrace parsed = ParseMahimahi(rendered, options);
  EXPECT_NEAR(parsed.MeanMbps(), original.MeanMbps(), 0.1);
  // Per-phase rates also survive the packet quantization.
  EXPECT_NEAR(parsed.AverageMbps(0.0, 10.0), 2.0, 0.2);
  EXPECT_NEAR(parsed.AverageMbps(10.0, 20.0), 6.0, 0.2);
}

TEST(Mahimahi, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "soda_mahimahi_test.mahi";
  const ThroughputTrace original = ConstantTrace(5.0, 30.0);
  SaveMahimahiFile(original, path);
  const ThroughputTrace loaded = LoadMahimahiFile(path);
  EXPECT_NEAR(loaded.MeanMbps(), 5.0, 0.2);
  std::filesystem::remove(path);
}

TEST(Mahimahi, RoundTripConservesBytes) {
  // Packet schedules quantize rate but must conserve delivered bytes: the
  // round-tripped trace carries the same megabits to within one packet per
  // bin.
  const ThroughputTrace original = StepTrace({3.0, 9.0, 1.5}, 8.0);
  const double bin_s = 0.5;
  const std::string rendered = ToMahimahi(original, bin_s);
  MahimahiOptions options;
  options.duration_s = original.DurationS();
  options.bin_seconds = bin_s;
  const ThroughputTrace parsed = ParseMahimahi(rendered, options);
  const double total_bins = original.DurationS() / bin_s;
  EXPECT_NEAR(parsed.MegabitsBetween(0.0, original.DurationS()),
              original.MegabitsBetween(0.0, original.DurationS()),
              total_bins * kPacketMb);
}

TEST(Mahimahi, CsvAndMahimahiAgreeOnTheSameTrace) {
  // The two persistence formats must describe the same network: save a
  // trace both ways, load both back, compare per-window averages.
  const auto dir = std::filesystem::temp_directory_path();
  const auto csv_path = dir / "soda_roundtrip_agree.csv";
  const auto mahi_path = dir / "soda_roundtrip_agree.mahi";
  const ThroughputTrace original = StepTrace({2.0, 6.0, 4.0}, 10.0);
  SaveTraceCsv(original, csv_path);
  SaveMahimahiFile(original, mahi_path);
  const ThroughputTrace from_csv = LoadTraceCsv(csv_path);
  MahimahiOptions options;
  options.duration_s = original.DurationS();
  const ThroughputTrace from_mahi = LoadMahimahiFile(mahi_path, options);
  for (double t0 = 0.0; t0 < 30.0; t0 += 10.0) {
    EXPECT_NEAR(from_csv.AverageMbps(t0, t0 + 10.0),
                from_mahi.AverageMbps(t0, t0 + 10.0), 0.25)
        << "window at " << t0;
  }
  std::filesystem::remove(csv_path);
  std::filesystem::remove(mahi_path);
}

TEST(Mahimahi, MissingFileThrows) {
  EXPECT_THROW((void)LoadMahimahiFile("/nonexistent/trace.mahi"),
               std::runtime_error);
}

TEST(Mahimahi, ValidatesOptions) {
  EXPECT_THROW((void)ParseMahimahi("1\n", {.bin_seconds = 0.0}),
               std::invalid_argument);
  const ThroughputTrace t = ConstantTrace(1.0, 5.0);
  EXPECT_THROW((void)ToMahimahi(t, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace soda::net
