#include "sim/session.hpp"

#include <gtest/gtest.h>

#include "abr/throughput_rule.hpp"
#include "media/video_model.hpp"
#include "net/generators.hpp"
#include "predict/ema.hpp"
#include "predict/fixed.hpp"

namespace soda::sim {
namespace {

// A controller that always picks a fixed rung (for dynamics testing).
class FixedRungController final : public abr::Controller {
 public:
  explicit FixedRungController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "FixedRung"; }

 private:
  media::Rung rung_;
};

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 4.0}),
                           {.segment_seconds = 2.0});
}

SimConfig NoRtt() {
  SimConfig config;
  config.rtt_s = 0.0;
  config.max_buffer_s = 20.0;
  return config;
}

TEST(Session, SteadyStateNoRebuffering) {
  // Throughput 4 Mb/s, rung 1 (2 Mb/s): each 4 Mb segment downloads in 1 s
  // while 2 s of video plays out; the buffer grows to the cap.
  const auto trace = net::ConstantTrace(4.0, 120.0);
  const auto video = TestVideo();
  FixedRungController controller(1);
  predict::FixedPredictor predictor(4.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  EXPECT_GT(log.SegmentCount(), 50);
  EXPECT_DOUBLE_EQ(log.total_rebuffer_s, 0.0);
  EXPECT_EQ(log.SwitchCount(), 0);
  EXPECT_FALSE(log.starved);
  // Buffer reaches and respects the cap.
  double max_buffer = 0.0;
  for (const auto& s : log.segments) {
    max_buffer = std::max(max_buffer, s.buffer_after_s);
    EXPECT_LE(s.buffer_after_s, 20.0 + 1e-9);
  }
  EXPECT_GE(max_buffer, 18.9);
}

TEST(Session, UndersuppliedLinkRebuffers) {
  // Throughput 1 Mb/s, rung 2 (4 Mb/s): every 8 Mb segment takes 8 s while
  // only 2 s of content arrives -> repeated stalls.
  const auto trace = net::ConstantTrace(1.0, 100.0);
  const auto video = TestVideo();
  FixedRungController controller(2);
  predict::FixedPredictor predictor(1.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  EXPECT_GT(log.total_rebuffer_s, 30.0);
}

TEST(Session, ExactRebufferAccounting) {
  // 1 Mb/s link, 2 Mb/s rung: segment = 4 Mb = 4 s download, plays 2 s.
  // First segment downloads before playback (startup), after that each
  // download stalls exactly 4 - 2 = 2 s once the buffer is drained.
  const auto trace = net::ConstantTrace(1.0, 40.0);
  const auto video = TestVideo();
  FixedRungController controller(1);
  predict::FixedPredictor predictor(1.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  ASSERT_GE(log.SegmentCount(), 3);
  EXPECT_DOUBLE_EQ(log.segments[0].rebuffer_s, 0.0);  // startup, not rebuffer
  // Segment 1 downloads in 4 s against 2 s of buffer: 2 s stall.
  EXPECT_NEAR(log.segments[1].rebuffer_s, 2.0, 1e-9);
  EXPECT_NEAR(log.segments[2].rebuffer_s, 2.0, 1e-9);
}

TEST(Session, StartupIsNotRebuffering) {
  const auto trace = net::ConstantTrace(1.0, 30.0);
  const auto video = TestVideo();
  FixedRungController controller(0);  // 1 Mb/s rung: sustainable
  predict::FixedPredictor predictor(1.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  EXPECT_NEAR(log.startup_s, 2.0, 1e-9);  // 2 Mb at 1 Mb/s
  EXPECT_DOUBLE_EQ(log.total_rebuffer_s, 0.0);
}

TEST(Session, RttAddsToDownloads) {
  const auto trace = net::ConstantTrace(2.0, 30.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::FixedPredictor predictor(2.0);
  SimConfig config = NoRtt();
  config.rtt_s = 0.5;
  const SessionLog log =
      RunSession(trace, controller, predictor, video, config);
  ASSERT_GE(log.SegmentCount(), 1);
  // 2 Mb at 2 Mb/s = 1 s + 0.5 s RTT.
  EXPECT_NEAR(log.segments[0].download_s, 1.5, 1e-9);
}

TEST(Session, BufferCapForcesWaits) {
  // Very fast link: downloads are nearly instant, so the player must idle
  // to drain the buffer below max - segment before each request.
  const auto trace = net::ConstantTrace(1000.0, 60.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::FixedPredictor predictor(1000.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  EXPECT_GT(log.total_wait_s, 10.0);
  for (const auto& s : log.segments) {
    EXPECT_LE(s.buffer_after_s, 20.0 + 1e-9);
  }
}

TEST(Session, LiveEdgeLimitsEarlyDownloads) {
  const auto trace = net::ConstantTrace(1000.0, 60.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::FixedPredictor predictor(1000.0);
  SimConfig config = NoRtt();
  config.live = true;
  config.live_latency_s = 6.0;  // 3 segments available at t=0
  const SessionLog log =
      RunSession(trace, controller, predictor, video, config);
  // Segment 3 becomes available at (4)*2 - 6 = 2 s, segment 4 at 4 s...
  ASSERT_GE(log.SegmentCount(), 6);
  EXPECT_NEAR(log.segments[3].request_s, 2.0, 1e-6);
  EXPECT_NEAR(log.segments[4].request_s, 4.0, 1e-6);
  // Buffer can never exceed the live latency.
  for (const auto& s : log.segments) {
    EXPECT_LE(s.buffer_after_s, 6.0 + 1e-6);
  }
}

TEST(Session, LiveStallAtEdgeCountsAsRebuffer) {
  // Live with minimal latency and an instant link: after draining the edge,
  // the player keeps waiting for production; with 1 segment of latency the
  // buffer runs dry between segment availabilities only when downloads are
  // slow. Use a slow link to force edge stalls.
  const auto trace = net::ConstantTrace(0.9, 60.0);  // slightly too slow
  const auto video = TestVideo();
  FixedRungController controller(0);  // 1 Mb/s content on 0.9 Mb/s link
  predict::FixedPredictor predictor(0.9);
  SimConfig config = NoRtt();
  config.live = true;
  config.live_latency_s = 4.0;
  const SessionLog log =
      RunSession(trace, controller, predictor, video, config);
  EXPECT_GT(log.total_rebuffer_s, 1.0);
}

TEST(Session, MaxSegmentsLimit) {
  const auto trace = net::ConstantTrace(10.0, 600.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::FixedPredictor predictor(10.0);
  SimConfig config = NoRtt();
  config.max_segments = 7;
  const SessionLog log =
      RunSession(trace, controller, predictor, video, config);
  EXPECT_EQ(log.SegmentCount(), 7);
}

TEST(Session, PredictorSeesTransferNotRtt) {
  const auto trace = net::ConstantTrace(2.0, 30.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::EmaPredictor predictor;
  SimConfig config = NoRtt();
  config.rtt_s = 1.0;  // large RTT
  (void)RunSession(trace, controller, predictor, video, config);
  // The EMA should have learned ~2 Mb/s (goodput), not 2Mb/(1s+1s)=1 Mb/s.
  EXPECT_NEAR(predictor.PredictOne(0.0, 2.0), 2.0, 0.2);
}

TEST(Session, SessionLogDerivedQuantities) {
  SessionLog log;
  log.segments.push_back({.rung = 0, .bitrate_mbps = 1.0});
  log.segments.push_back({.rung = 1, .bitrate_mbps = 2.0});
  log.segments.push_back({.rung = 1, .bitrate_mbps = 2.0});
  log.segments.push_back({.rung = 0, .bitrate_mbps = 1.0});
  EXPECT_EQ(log.SwitchCount(), 2);
  EXPECT_DOUBLE_EQ(log.MeanBitrateMbps(), 1.5);
  EXPECT_DOUBLE_EQ(log.PlayedSeconds(2.0), 8.0);
}

TEST(Session, ValidatesConfig) {
  const auto trace = net::ConstantTrace(10.0, 60.0);
  const auto video = TestVideo();
  FixedRungController controller(0);
  predict::FixedPredictor predictor(10.0);
  SimConfig config;
  config.max_buffer_s = 1.0;  // smaller than a segment
  EXPECT_THROW(RunSession(trace, controller, predictor, video, config),
               std::invalid_argument);
}

TEST(Session, AdaptiveControllerRunsEndToEnd) {
  Rng rng(4);
  net::RandomWalkConfig walk;
  walk.mean_mbps = 3.0;
  walk.duration_s = 300.0;
  const auto trace = net::RandomWalkTrace(walk, rng);
  const auto video = TestVideo();
  abr::ThroughputRuleController controller;
  predict::EmaPredictor predictor;
  const SessionLog log =
      RunSession(trace, controller, predictor, video, NoRtt());
  EXPECT_GT(log.SegmentCount(), 50);
  for (const auto& s : log.segments) {
    EXPECT_TRUE(video.Ladder().IsValidRung(s.rung));
    EXPECT_GE(s.buffer_after_s, 0.0);
  }
}

}  // namespace
}  // namespace soda::sim
