#include "util/csv.hpp"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace soda {
namespace {

TEST(SplitCsvLine, Basic) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLine, EmptyFields) {
  const auto fields = SplitCsvLine(",x,");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
}

TEST(SplitCsvLine, QuotedCommaAndEscapedQuote) {
  const auto fields = SplitCsvLine(R"("a,b","say ""hi""",plain)");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
  EXPECT_EQ(fields[2], "plain");
}

TEST(SplitCsvLine, StripsCarriageReturn) {
  const auto fields = SplitCsvLine("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsv, HeaderAndRows) {
  const CsvTable table = ParseCsv("time,mbps\n0,1.5\n1,2.5\n", true);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.ColumnIndex("mbps"), 1);
  EXPECT_EQ(table.ColumnIndex("missing"), -1);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "2.5");
}

TEST(ParseCsv, SkipsCommentsAndBlanks) {
  const CsvTable table = ParseCsv("# comment\n\n1,2\n  \n3,4\n", false);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(ParseCsv, NoTrailingNewline) {
  const CsvTable table = ParseCsv("1,2\n3,4", false);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(CsvWriter, RoundTrip) {
  CsvWriter writer;
  writer.AddRow({"a", "with,comma", "with\"quote"});
  const CsvTable parsed = ParseCsv(writer.Text(), false);
  ASSERT_EQ(parsed.rows.size(), 1u);
  EXPECT_EQ(parsed.rows[0][1], "with,comma");
  EXPECT_EQ(parsed.rows[0][2], "with\"quote");
}

TEST(CsvFile, WriteAndLoad) {
  const auto path = std::filesystem::temp_directory_path() / "soda_csv_test.csv";
  CsvWriter writer;
  writer.AddRow({"h1", "h2"});
  writer.AddRow({"1.5", "hello"});
  writer.WriteFile(path);
  const CsvTable table = LoadCsvFile(path, true);
  EXPECT_EQ(table.header[0], "h1");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "hello");
  std::filesystem::remove(path);
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(LoadCsvFile("/nonexistent/path/x.csv", false),
               std::runtime_error);
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25", "test"), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("  -1e3", "test"), -1000.0);
}

TEST(ParseDouble, InvalidThrows) {
  EXPECT_THROW((void)ParseDouble("abc", "ctx"), std::runtime_error);
  EXPECT_THROW((void)ParseDouble("", "ctx"), std::runtime_error);
}

}  // namespace
}  // namespace soda
