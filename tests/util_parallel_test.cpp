#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace soda::util {
namespace {

TEST(EffectiveThreads, ClampsToWorkAndHardware) {
  EXPECT_EQ(EffectiveThreads(4, 0), 1);
  EXPECT_EQ(EffectiveThreads(4, 1), 1);
  EXPECT_EQ(EffectiveThreads(4, 2), 2);
  EXPECT_EQ(EffectiveThreads(4, 100), 4);
  EXPECT_EQ(EffectiveThreads(1, 100), 1);
  // 0 / negative = hardware concurrency, still at least 1 and at most n.
  EXPECT_GE(EffectiveThreads(0, 100), 1);
  EXPECT_LE(EffectiveThreads(0, 100), 100);
  EXPECT_GE(EffectiveThreads(-3, 2), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 7}) {
    const std::size_t n = 153;
    std::vector<std::atomic<int>> visits(n);
    ParallelFor(n, threads, [&](int worker, std::size_t i) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, threads);
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  bool called = false;
  ParallelFor(0, 8, [&](int, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialFallbackRunsOnCallingWorkerInOrder) {
  std::vector<std::size_t> order;
  ParallelFor(5, 1, [&](int worker, std::size_t i) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstExceptionAndStops) {
  for (const int threads : {1, 4}) {
    std::atomic<int> ran{0};
    try {
      ParallelFor(1000, threads, [&](int, std::size_t i) {
        if (i == 3) throw std::runtime_error("boom");
        ran.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "expected the worker exception to propagate";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom");
    }
    // The abort flag keeps the pool from draining all remaining work.
    EXPECT_LT(ran.load(), 1000);
  }
}

TEST(ParallelFor, PerWorkerStateIsExclusive) {
  const int threads = 4;
  const std::size_t n = 400;
  // One non-atomic counter per worker: TSan (and the sum check) verify the
  // worker id really partitions the state.
  std::vector<long> per_worker(static_cast<std::size_t>(threads), 0);
  ParallelFor(n, threads, [&](int worker, std::size_t) {
    per_worker[static_cast<std::size_t>(worker)]++;
  });
  long total = 0;
  for (const long count : per_worker) total += count;
  EXPECT_EQ(total, static_cast<long>(n));
}

}  // namespace
}  // namespace soda::util
