// EventTracer + session traces: structural golden checks on a pinned-seed
// corpus, a byte-exact golden for the JSON serialization, and — the load-
// bearing guarantee — evaluation output bit-identical with tracing on or
// off at any thread count (tracing is observation-only).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "bench/bench_common.hpp"
#include "core/registry.hpp"
#include "media/quality.hpp"
#include "net/dataset.hpp"
#include "net/generators.hpp"
#include "obs/trace.hpp"
#include "predict/fixed.hpp"
#include "qoe/eval.hpp"
#include "sim/session.hpp"
#include "util/rng.hpp"

namespace soda {
namespace {

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 8.0}),
                           {.segment_seconds = 2.0});
}

// Controller that always requests the given rung (mirrors the abandonment
// test fixture so the traced timeline is easy to reason about).
class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

void ExpectLogsBitIdentical(const sim::SessionLog& a,
                            const sim::SessionLog& b) {
  EXPECT_EQ(a.startup_s, b.startup_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.total_wait_s, b.total_wait_s);
  EXPECT_EQ(a.session_s, b.session_s);
  EXPECT_EQ(a.starved, b.starved);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.fault_wasted_mb, b.fault_wasted_mb);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const sim::SegmentRecord& x = a.segments[i];
    const sim::SegmentRecord& y = b.segments[i];
    EXPECT_EQ(x.rung, y.rung) << "segment " << i;
    EXPECT_EQ(x.request_s, y.request_s) << "segment " << i;
    EXPECT_EQ(x.download_s, y.download_s) << "segment " << i;
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s) << "segment " << i;
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s) << "segment " << i;
    EXPECT_EQ(x.abandoned, y.abandoned) << "segment " << i;
    EXPECT_EQ(x.wasted_mb, y.wasted_mb) << "segment " << i;
  }
}

// Tracing must never perturb the simulation: the SessionLog is bit-exact
// whether the tracer is absent, enabled, or constructed-but-disabled.
TEST(ObsTrace, SessionLogBitIdenticalWithTracingOnOff) {
  const auto trace = net::SquareWaveTrace(1.0, 12.0, 15.0, 120.0);
  const auto video = TestVideo();
  sim::SimConfig config;
  config.allow_abandonment = true;  // exercise the abandonment path too

  auto run = [&](obs::EventTracer* tracer) {
    PinnedController controller(2);
    predict::FixedPredictor predictor(5.0);
    return sim::RunSession(trace, controller, predictor, video, config,
                           tracer);
  };
  const sim::SessionLog baseline = run(nullptr);
  obs::EventTracer enabled(true);
  const sim::SessionLog traced = run(&enabled);
  obs::EventTracer disabled(false);
  const sim::SessionLog untraced = run(&disabled);

  ExpectLogsBitIdentical(baseline, traced);
  ExpectLogsBitIdentical(baseline, untraced);
  EXPECT_FALSE(enabled.Events().empty());
  EXPECT_TRUE(disabled.Events().empty());
}

// Structural golden on a pinned-seed corpus session: the traced timeline
// must be well-formed and consistent with the SessionLog it narrates.
TEST(ObsTrace, GoldenCorpusTraceStructure) {
  Rng rng(bench::kDefaultSeed);
  const auto sessions =
      net::DatasetEmulator(net::DatasetKind::kPuffer).MakeSessions(2, rng);
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});

  qoe::EvalConfig config;
  config.sim.max_buffer_s = 20.0;
  config.sim.live = true;
  config.sim.live_latency_s = 20.0;
  config.threads = 1;
  config.base_seed = bench::kDefaultSeed;
  config.utility = [u = media::NormalizedLogUtility(ladder)](double mbps) {
    return u.At(mbps);
  };
  config.collect_traces = true;

  const qoe::EvalResult result = qoe::EvaluateController(
      sessions, [] { return core::MakeController("soda"); },
      bench::EmaFactory(), video, config);

  ASSERT_EQ(result.traces.size(), sessions.size());
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    SCOPED_TRACE(k);
    const obs::SessionTrace& trace = result.traces[k];
    EXPECT_EQ(trace.session_index, k);
    EXPECT_EQ(trace.controller, "SODA");
    EXPECT_EQ(trace.predictor, "EMA");
    EXPECT_EQ(trace.seed, qoe::SessionSeed(config.base_seed, k));
    const auto& events = trace.events;
    ASSERT_GE(events.size(), 4u);
    EXPECT_EQ(events.front().type, obs::EventType::kSessionStart);
    EXPECT_EQ(events.back().type, obs::EventType::kSessionEnd);
    // Timestamps are non-decreasing simulated time.
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].t_s, events[i].t_s) << "event " << i;
    }
    // Decisions, download starts and download ends all agree with the
    // per-segment log (no abandonment in this configuration).
    std::size_t decisions = 0;
    std::size_t starts = 0;
    std::size_t ends = 0;
    std::size_t startups = 0;
    for (const obs::TraceEvent& e : events) {
      switch (e.type) {
        case obs::EventType::kDecision:
          ++decisions;
          EXPECT_GT(e.sequences_evaluated, 0);
          EXPECT_GT(e.nodes_expanded, 0);
          break;
        case obs::EventType::kDownloadStart: ++starts; break;
        case obs::EventType::kDownloadEnd: ++ends; break;
        case obs::EventType::kStartup: ++startups; break;
        default: break;
      }
    }
    const std::size_t segments =
        static_cast<std::size_t>(result.per_session[k].segment_count);
    EXPECT_EQ(decisions, segments);
    EXPECT_EQ(starts, segments);
    EXPECT_EQ(ends, segments);
    EXPECT_EQ(startups, 1u);
  }
}

// The acceptance guarantee: per-session metrics are bit-identical with
// trace collection on or off, serial or parallel.
TEST(ObsTrace, EvaluationBitIdenticalWithTraceCollectionAtAnyThreadCount) {
  Rng rng(bench::kDefaultSeed);
  const auto sessions =
      net::DatasetEmulator(net::DatasetKind::kPuffer).MakeSessions(5, rng);
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});

  qoe::EvalConfig config;
  config.sim.max_buffer_s = 20.0;
  config.sim.live = true;
  config.sim.live_latency_s = 20.0;
  config.base_seed = bench::kDefaultSeed;
  config.utility = [u = media::NormalizedLogUtility(ladder)](double mbps) {
    return u.At(mbps);
  };

  auto evaluate = [&](bool collect, int threads) {
    qoe::EvalConfig c = config;
    c.collect_traces = collect;
    c.threads = threads;
    return qoe::EvaluateController(
        sessions, [] { return core::MakeController("soda-cached"); },
        bench::EmaFactory(), video, c);
  };

  const qoe::EvalResult baseline = evaluate(false, 1);
  EXPECT_TRUE(baseline.traces.empty());
  for (const bool collect : {false, true}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "collect=" << collect << " threads=" << threads);
      const qoe::EvalResult result = evaluate(collect, threads);
      ASSERT_EQ(result.per_session.size(), baseline.per_session.size());
      for (std::size_t k = 0; k < baseline.per_session.size(); ++k) {
        EXPECT_EQ(result.per_session[k].qoe, baseline.per_session[k].qoe);
        EXPECT_EQ(result.per_session[k].mean_utility,
                  baseline.per_session[k].mean_utility);
        EXPECT_EQ(result.per_session[k].rebuffer_ratio,
                  baseline.per_session[k].rebuffer_ratio);
        EXPECT_EQ(result.per_session[k].switch_rate,
                  baseline.per_session[k].switch_rate);
        EXPECT_EQ(result.per_session[k].segment_count,
                  baseline.per_session[k].segment_count);
      }
      if (collect) {
        ASSERT_EQ(result.traces.size(), sessions.size());
      }
    }
  }

  // Collected traces themselves are thread-count invariant.
  const qoe::EvalResult serial = evaluate(true, 1);
  const qoe::EvalResult parallel = evaluate(true, 4);
  ASSERT_EQ(serial.traces.size(), parallel.traces.size());
  for (std::size_t k = 0; k < serial.traces.size(); ++k) {
    const auto& a = serial.traces[k].events;
    const auto& b = parallel.traces[k].events;
    ASSERT_EQ(a.size(), b.size()) << "session " << k;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].type, b[i].type) << "session " << k << " event " << i;
      EXPECT_EQ(a[i].t_s, b[i].t_s) << "session " << k << " event " << i;
      EXPECT_EQ(a[i].segment, b[i].segment)
          << "session " << k << " event " << i;
      EXPECT_EQ(a[i].rung, b[i].rung) << "session " << k << " event " << i;
    }
  }
}

// Abandonment emits a typed event whose accounting matches the log.
TEST(ObsTrace, AbandonmentEmitsEvent) {
  const auto trace = net::ConstantTrace(1.0, 60.0);
  const auto video = TestVideo();
  PinnedController controller(2);
  predict::FixedPredictor predictor(1.0);
  sim::SimConfig config;
  config.rtt_s = 0.0;
  config.allow_abandonment = true;
  config.abandon_check_s = 1.0;
  config.abandon_stall_threshold_s = 0.5;

  obs::EventTracer tracer(true);
  const sim::SessionLog log =
      sim::RunSession(trace, controller, predictor, video, config, &tracer);
  ASSERT_GT(log.AbandonedCount(), 0);

  double traced_waste = 0.0;
  int abandon_events = 0;
  for (const obs::TraceEvent& e : tracer.Events()) {
    if (e.type == obs::EventType::kAbandon) {
      ++abandon_events;
      traced_waste += e.value_mb;
      EXPECT_EQ(e.rung, 0);          // refetched at the lowest rung
      EXPECT_GT(e.prev_rung, 0);     // the abandoned attempt was higher
      EXPECT_GT(e.duration_s, 0.0);  // time burned before aborting
    }
  }
  EXPECT_EQ(abandon_events, log.AbandonedCount());
  EXPECT_EQ(traced_waste, log.WastedMb());
}

// Byte-exact golden for the JSON serialization of a hand-built trace.
TEST(ObsTrace, WriteTraceJsonGolden) {
  obs::SessionTrace trace;
  trace.controller = "SODA";
  trace.predictor = "EMA";
  trace.session_index = 3;
  trace.seed = 12345678901234567890ull;  // > INT64_MAX: emitted as a string

  obs::TraceEvent start;
  start.type = obs::EventType::kSessionStart;
  start.t_s = 0.0;
  start.duration_s = 60.0;
  trace.events.push_back(start);

  obs::TraceEvent decision;
  decision.type = obs::EventType::kDecision;
  decision.t_s = 0.5;
  decision.segment = 0;
  decision.rung = 2;
  decision.buffer_s = 4.0;
  decision.sequences_evaluated = 10;
  decision.nodes_expanded = 12;
  decision.nodes_pruned = 3;
  decision.warm_start_hit = true;
  trace.events.push_back(decision);

  obs::TraceEvent end;
  end.type = obs::EventType::kSessionEnd;
  end.t_s = 60.0;
  end.buffer_s = 1.5;
  trace.events.push_back(end);

  std::ostringstream out;
  obs::WriteTraceJson(out, trace);
  const std::string expected = R"({
  "controller": "SODA",
  "predictor": "EMA",
  "session_index": 3,
  "seed": "12345678901234567890",
  "event_count": 3,
  "events": [
    {
      "t": 0,
      "type": "session_start",
      "duration_s": 60
    },
    {
      "t": 0.5,
      "type": "decision",
      "segment": 0,
      "rung": 2,
      "buffer_s": 4,
      "sequences_evaluated": 10,
      "nodes_expanded": 12,
      "nodes_pruned": 3,
      "warm_start_hit": true
    },
    {
      "t": 60,
      "type": "session_end",
      "buffer_s": 1.5
    }
  ]
}
)";
  EXPECT_EQ(out.str(), expected);
}

TEST(ObsTrace, CountByTypeSummarizes) {
  obs::EventTracer tracer(true);
  obs::TraceEvent e;
  e.type = obs::EventType::kDecision;
  tracer.Record(e);
  tracer.Record(e);
  e.type = obs::EventType::kAbandon;
  tracer.Record(e);
  const auto counts = obs::CountByType(tracer.Events());
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "decision");
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(counts[1].first, "abandon");
  EXPECT_EQ(counts[1].second, 1u);
}

}  // namespace
}  // namespace soda
