#include <cmath>

#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "theory/monotone_check.hpp"
#include "theory/offline_optimal.hpp"
#include "theory/perturbation.hpp"
#include "theory/rollout.hpp"
#include "util/rng.hpp"

namespace soda::theory {
namespace {

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

core::CostModelConfig BaseConfig() {
  core::CostModelConfig config;
  config.target_buffer_s = 12.0;
  config.max_buffer_s = 20.0;
  config.dt_s = 2.0;
  config.weights.beta = 25.0;
  config.weights.gamma = 50.0;
  config.weights.kappa = 0.0;  // the pure Equation-1 objective
  return config;
}

std::vector<double> Bandwidths(int n, std::uint64_t seed, double mean = 15.0,
                               double rel_std = 0.5) {
  Rng rng(seed);
  net::RandomWalkConfig walk;
  walk.mean_mbps = mean;
  walk.stationary_rel_std = rel_std;
  walk.reversion_rate = 0.15;
  walk.dt_s = 2.0;
  walk.duration_s = 2.0 * n;
  const net::ThroughputTrace trace = net::RandomWalkTrace(walk, rng);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(trace.AverageMbps(2.0 * i, 2.0 * (i + 1)));
  }
  return out;
}

TEST(OfflineOptimal, ConstantBandwidthStaysAtMatchedRung) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const std::vector<double> bandwidth(50, 12.0);
  const OfflineSolution solution = SolveOffline(model, bandwidth, 12.0, 3);
  ASSERT_TRUE(solution.feasible);
  // With buffer at target and w == 12, staying on rung 3 is free of buffer
  // and switching cost; the DP must find it.
  for (const media::Rung r : solution.rungs) {
    EXPECT_EQ(r, 3);
  }
  for (const double x : solution.buffers_s) {
    EXPECT_NEAR(x, 12.0, 0.2);
  }
}

TEST(OfflineOptimal, CostNotWorseThanAnyFixedPlan) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(60, 9);
  const OfflineSolution solution = SolveOffline(model, bandwidth, 10.0, 2);
  ASSERT_TRUE(solution.feasible);
  // Compare against every constant-rung plan (evaluated with soft
  // constraints to stay comparable).
  for (media::Rung r = 0; r < ladder.Count(); ++r) {
    const std::vector<media::Rung> constant(bandwidth.size(), r);
    const double cost =
        core::EvaluatePlan(model, bandwidth, constant, 10.0, 2, false);
    // Small tolerance for grid discretization.
    EXPECT_LE(solution.total_cost, cost + 0.5) << "rung " << r;
  }
}

TEST(OfflineOptimal, InfeasibleWhenBandwidthCannotSustainBuffer) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  // Bandwidth so low even the lowest rung drains the buffer below zero.
  const std::vector<double> bandwidth(30, 0.05);
  const OfflineSolution solution = SolveOffline(model, bandwidth, 1.0, 0);
  EXPECT_FALSE(solution.feasible);
}

TEST(OfflineOptimal, FinerGridNeverWorse) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(40, 10);
  OfflineConfig coarse;
  coarse.buffer_grid = 51;
  OfflineConfig fine;
  fine.buffer_grid = 401;
  const OfflineSolution a = SolveOffline(model, bandwidth, 10.0, 2, coarse);
  const OfflineSolution b = SolveOffline(model, bandwidth, 10.0, 2, fine);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(b.total_cost, a.total_cost + 1e-6);
}

TEST(Rollout, ExactPredictionsNearOptimal) {
  // Theorem 4.1: with exact predictions and a reasonable horizon, SODA's
  // cost is within a small factor of OPT.
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(150, 11);
  RolloutConfig config;
  config.horizon = 5;
  const RegretReport report =
      CompareToOffline(model, bandwidth, 12.0, 3, config);
  EXPECT_GT(report.optimal_cost, 0.0);
  EXPECT_LT(report.competitive_ratio, 1.30);
  EXPECT_GE(report.competitive_ratio, 1.0 - 0.05);  // DP grid slack
}

TEST(Rollout, RegretDecreasesWithHorizon) {
  // Theorem 4.1: regret decays (exponentially) in K. We assert monotone
  // non-increase from K=1 to K=5 on average bandwidths.
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(150, 12);
  double prev_regret = 1e18;
  for (const int k : {1, 3, 5}) {
    RolloutConfig config;
    config.horizon = k;
    const RegretReport report =
        CompareToOffline(model, bandwidth, 12.0, 3, config);
    EXPECT_LE(report.dynamic_regret, prev_regret + 1e-6) << "K=" << k;
    prev_regret = report.dynamic_regret;
  }
}

TEST(Rollout, NoiseIncreasesCost) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(150, 13);
  RolloutConfig exact;
  exact.horizon = 5;
  RolloutConfig noisy = exact;
  noisy.prediction_noise = 0.6;
  const RolloutResult clean_run =
      RunTimeBasedRollout(model, bandwidth, 12.0, 3, exact);
  const RolloutResult noisy_run =
      RunTimeBasedRollout(model, bandwidth, 12.0, 3, noisy);
  EXPECT_GT(noisy_run.total_cost, clean_run.total_cost * 0.99);
}

TEST(Rollout, BufferStaysInterior) {
  // Theorem 4.2: with moderate noise and steep buffer costs the buffer
  // never hits the constraint boundary.
  const auto ladder = Ladder();
  core::CostModelConfig config = BaseConfig();
  config.weights.beta = 50.0;
  const core::CostModel model(ladder, config);
  const auto bandwidth = Bandwidths(200, 14);
  RolloutConfig rollout;
  rollout.horizon = 5;
  rollout.prediction_noise = 0.2;
  const RolloutResult result =
      RunTimeBasedRollout(model, bandwidth, 12.0, 3, rollout);
  EXPECT_GT(result.min_buffer_s, 0.0);
  EXPECT_LT(result.max_buffer_s, 20.0);
}

TEST(Rollout, BruteForceAblationAgreesWithMonotone) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto bandwidth = Bandwidths(60, 15);
  RolloutConfig mono;
  mono.horizon = 4;
  RolloutConfig brute = mono;
  brute.brute_force = true;
  const RolloutResult a =
      RunTimeBasedRollout(model, bandwidth, 12.0, 3, mono);
  const RolloutResult b =
      RunTimeBasedRollout(model, bandwidth, 12.0, 3, brute);
  // Decisions agree at most steps, and the realized costs are close:
  // the monotone restriction loses little (Theorem 4.3).
  int disagreements = 0;
  for (std::size_t i = 0; i < a.rungs.size(); ++i) {
    if (a.rungs[i] != b.rungs[i]) ++disagreements;
  }
  EXPECT_LE(disagreements, static_cast<int>(a.rungs.size() / 4));
  EXPECT_NEAR(a.total_cost, b.total_cost, 0.10 * b.total_cost + 1e-9);
}

TEST(Perturbation, TrajectoriesConvergeExponentially) {
  // Fig. 6: two rollouts from different initial buffers converge. A dense
  // ladder approximates the theory's continuous action set, so the
  // discrete attractor does not freeze a residual buffer offset.
  std::vector<double> rungs;
  for (int i = 0; i < 16; ++i) {
    rungs.push_back(1.0 * std::pow(60.0, i / 15.0));
  }
  const media::BitrateLadder ladder(std::move(rungs));
  const core::CostModel model(ladder, BaseConfig());
  const std::vector<double> bandwidth(80, 15.0);
  const DecayMeasurement decay =
      MeasureInitialStateDecay(model, bandwidth, 4.0, 18.0, 5);
  ASSERT_GT(decay.distances.size(), 10u);
  EXPECT_GT(decay.distances.front(), decay.distances.back());
  // The tail distance is small relative to the initial gap.
  EXPECT_LT(decay.distances.back(), 0.10 * decay.distances.front() + 1e-9);
  if (decay.fitted_rho > 0.0) {
    EXPECT_LT(decay.fitted_rho, 1.0);
  }
}

TEST(Perturbation, FarPredictionsMatterLess) {
  const auto ladder = Ladder();
  const core::CostModel model(ladder, BaseConfig());
  const auto sensitivity =
      MeasurePredictionSensitivity(model, 10.0, 10.0, 2, 5, 30.0);
  ASSERT_EQ(sensitivity.size(), 5u);
  // The first-interval prediction matters at least as much as the last.
  EXPECT_GE(sensitivity.front(), sensitivity.back());
}

TEST(MonotoneCheck, MismatchDropsWithGamma) {
  const auto ladder = Ladder();
  MismatchConfig config;
  config.situations = 3000;
  const MismatchSample low =
      MeasureMismatch(ladder, BaseConfig(), /*gamma=*/0.1, 4, config);
  const MismatchSample high =
      MeasureMismatch(ladder, BaseConfig(), /*gamma=*/200.0, 4, config);
  EXPECT_GT(low.situations, 1000);
  EXPECT_LE(high.mismatch_probability, low.mismatch_probability);
  EXPECT_LT(high.mismatch_probability, 0.05);
  EXPECT_GE(high.mean_objective_gap, -1e-9);
}

TEST(MonotoneCheck, Validation) {
  MismatchConfig bad;
  bad.situations = 0;
  EXPECT_THROW(
      (void)MeasureMismatch(Ladder(), BaseConfig(), 1.0, 3, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace soda::theory
