#include "qoe/report.hpp"

#include <filesystem>

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace soda::qoe {
namespace {

EvalResult MakeResult(const std::string& name, double qoe_a, double qoe_b) {
  EvalResult result;
  result.controller_name = name;
  for (const double qoe : {qoe_a, qoe_b}) {
    QoeMetrics m;
    m.qoe = qoe;
    m.mean_utility = qoe + 0.1;
    m.rebuffer_ratio = 0.01;
    m.switch_rate = 0.05;
    m.segment_count = 300;
    result.per_session.push_back(m);
    result.aggregate.Add(m);
  }
  return result;
}

TEST(Report, PerSessionCsvShape) {
  const std::string csv =
      PerSessionCsv({MakeResult("SODA", 0.8, 0.9), MakeResult("MPC", 0.5, 0.6)});
  const CsvTable table = ParseCsv(csv, /*has_header=*/true);
  EXPECT_EQ(table.ColumnIndex("qoe"), 2);
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_EQ(table.rows[0][0], "SODA");
  EXPECT_EQ(table.rows[3][0], "MPC");
  EXPECT_EQ(table.rows[1][1], "1");  // session index
  EXPECT_NEAR(ParseDouble(table.rows[0][2], "qoe"), 0.8, 1e-9);
  EXPECT_EQ(table.rows[0][6], "300");
}

TEST(Report, WriteCsvFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "soda_report_test.csv";
  WritePerSessionCsv({MakeResult("SODA", 0.8, 0.9)}, path);
  const CsvTable table = LoadCsvFile(path, true);
  EXPECT_EQ(table.rows.size(), 2u);
  std::filesystem::remove(path);
}

TEST(Report, WriteCsvBadPathThrows) {
  EXPECT_THROW(
      WritePerSessionCsv({MakeResult("SODA", 0.8, 0.9)}, "/nonexistent/x.csv"),
      std::runtime_error);
}

TEST(Report, SummaryMarkdown) {
  const std::string md =
      SummaryMarkdown({MakeResult("SODA", 0.8, 0.9), MakeResult("MPC", 0.5, 0.6)});
  EXPECT_NE(md.find("| SODA |"), std::string::npos);
  EXPECT_NE(md.find("| MPC |"), std::string::npos);
  EXPECT_NE(md.find("0.850"), std::string::npos);  // SODA mean QoE
  EXPECT_NE(md.find("| controller |"), std::string::npos);
}

TEST(Report, QoeImprovementOverBest) {
  const EvalResult ours = MakeResult("SODA", 1.0, 1.2);   // mean 1.1
  const EvalResult weak = MakeResult("A", 0.4, 0.6);      // mean 0.5
  const EvalResult strong = MakeResult("B", 0.9, 1.1);    // mean 1.0
  EXPECT_NEAR(QoeImprovementOverBest(ours, {weak, strong}), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(QoeImprovementOverBest(ours, {}), 0.0);
  const EvalResult negative = MakeResult("C", -1.0, -0.5);
  EXPECT_DOUBLE_EQ(QoeImprovementOverBest(ours, {negative}), 0.0);
}

}  // namespace
}  // namespace soda::qoe
