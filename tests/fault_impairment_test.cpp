// Trace-impairment half of the fault subsystem: transforms are exact under
// the piecewise-constant trace model, plans compose and round-trip through
// the config format, and invalid parameters are rejected up front.
#include "fault/impairment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fault/profile.hpp"
#include "net/generators.hpp"

namespace soda::fault {
namespace {

TEST(Impairment, ScaleAppliesExactlyInsideItsWindow) {
  const net::ThroughputTrace trace = net::ConstantTrace(10.0, 100.0);
  ImpairmentPlan plan;
  plan.scales.push_back({.factor = 0.5, .from_s = 20.0, .to_s = 50.0});
  const net::ThroughputTrace impaired = plan.ApplyToTrace(trace);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(10.0), 10.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(20.0), 5.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(49.9), 5.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(50.0), 10.0);
  // The byte integral over the window is exact, not approximated.
  EXPECT_DOUBLE_EQ(impaired.AverageMbps(20.0, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(impaired.DurationS(), trace.DurationS());
}

TEST(Impairment, OutageClampsToFloorAndRepeats) {
  const net::ThroughputTrace trace = net::ConstantTrace(8.0, 120.0);
  ImpairmentPlan plan;
  plan.outages.push_back(
      {.start_s = 10.0, .duration_s = 5.0, .period_s = 40.0, .floor_mbps = 0.0});
  const net::ThroughputTrace impaired = plan.ApplyToTrace(trace);
  // Windows at [10,15), [50,55), [90,95).
  for (const double t : {12.0, 52.0, 92.0}) {
    EXPECT_DOUBLE_EQ(impaired.ThroughputAt(t), 0.0) << "t=" << t;
  }
  for (const double t : {5.0, 20.0, 60.0, 100.0}) {
    EXPECT_DOUBLE_EQ(impaired.ThroughputAt(t), 8.0) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(OutageSeconds(impaired, 0.0, 120.0), 15.0);
}

TEST(Impairment, OutageFloorKeepsResidualThroughput) {
  const net::ThroughputTrace trace = net::ConstantTrace(8.0, 60.0);
  ImpairmentPlan plan;
  plan.outages.push_back(
      {.start_s = 0.0, .duration_s = 60.0, .period_s = 0.0, .floor_mbps = 0.5});
  const net::ThroughputTrace impaired = plan.ApplyToTrace(trace);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(30.0), 0.5);
  // A non-zero floor is degraded service, not an outage.
  EXPECT_DOUBLE_EQ(OutageSeconds(impaired, 0.0, 60.0), 0.0);
}

TEST(Impairment, CdnSwitchBlackoutThenCapacityChange) {
  const net::ThroughputTrace trace = net::ConstantTrace(10.0, 100.0);
  ImpairmentPlan plan;
  plan.switches.push_back({.at_s = 40.0, .blackout_s = 3.0, .factor = 0.6});
  const net::ThroughputTrace impaired = plan.ApplyToTrace(trace);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(39.0), 10.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(41.0), 0.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(43.0), 6.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(99.0), 6.0);
  EXPECT_DOUBLE_EQ(OutageSeconds(impaired, 0.0, 100.0), 3.0);
}

TEST(Impairment, TransformsPreserveOriginalBreakpoints) {
  const net::ThroughputTrace trace = net::StepTrace({2.0, 6.0, 4.0}, 10.0);
  ImpairmentPlan plan;
  plan.scales.push_back({.factor = 0.5, .from_s = 5.0, .to_s = 25.0});
  const net::ThroughputTrace impaired = plan.ApplyToTrace(trace);
  // Original steps at t=10 and t=20 survive inside the scaled window.
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(7.0), 1.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(12.0), 3.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(22.0), 2.0);
  EXPECT_DOUBLE_EQ(impaired.ThroughputAt(27.0), 4.0);
}

TEST(Impairment, ComposeAppendsAndScalesMultiply) {
  const net::ThroughputTrace trace = net::ConstantTrace(16.0, 50.0);
  ImpairmentPlan a;
  a.scales.push_back({.factor = 0.5});
  ImpairmentPlan b;
  b.scales.push_back({.factor = 0.25});
  b.rtt_windows.push_back({.from_s = 0.0, .to_s = 10.0, .extra_s = 0.1});
  a.Compose(b);
  EXPECT_EQ(a.scales.size(), 2u);
  EXPECT_EQ(a.rtt_windows.size(), 1u);
  EXPECT_DOUBLE_EQ(a.ApplyToTrace(trace).ThroughputAt(25.0), 2.0);
}

TEST(Impairment, NoopAndTraceUnchangedDistinction) {
  ImpairmentPlan plan;
  EXPECT_TRUE(plan.IsNoop());
  EXPECT_TRUE(plan.TraceIsUnchanged());
  plan.rtt_windows.push_back({.from_s = 0.0, .to_s = kInfSeconds,
                              .extra_s = 0.05});
  // RTT windows impair requests, not the trace.
  EXPECT_FALSE(plan.IsNoop());
  EXPECT_TRUE(plan.TraceIsUnchanged());
  plan.outages.push_back({.start_s = 1.0, .duration_s = 1.0});
  EXPECT_FALSE(plan.TraceIsUnchanged());
}

TEST(Impairment, ExtraRttWindowsAdd) {
  ImpairmentPlan plan;
  plan.rtt_windows.push_back({.from_s = 0.0, .to_s = 100.0, .extra_s = 0.1});
  plan.rtt_windows.push_back({.from_s = 50.0, .to_s = 60.0, .extra_s = 0.2});
  EXPECT_DOUBLE_EQ(plan.ExtraRttAt(10.0), 0.1);
  EXPECT_DOUBLE_EQ(plan.ExtraRttAt(55.0), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(plan.ExtraRttAt(60.0), 0.1);  // half-open window
  EXPECT_DOUBLE_EQ(plan.ExtraRttAt(100.0), 0.0);
}

TEST(Impairment, OutageSecondsExtendsLastRateToQueryEnd) {
  // Trace ends in a zero-rate phase; the tail beyond the trace holds it.
  const net::ThroughputTrace trace = net::StepTrace({5.0, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(OutageSeconds(trace, 0.0, 30.0), 20.0);
  EXPECT_DOUBLE_EQ(OutageSeconds(trace, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(OutageSeconds(trace, 12.0, 18.0), 6.0);
}

TEST(Impairment, ValidationRejectsBadEvents) {
  const auto expect_invalid = [](const ImpairmentPlan& plan) {
    EXPECT_THROW(plan.Validate(), std::invalid_argument);
  };
  ImpairmentPlan plan;
  plan.outages.push_back({.start_s = -1.0, .duration_s = 1.0});
  expect_invalid(plan);
  plan = {};
  plan.outages.push_back({.start_s = 0.0, .duration_s = -2.0});
  expect_invalid(plan);
  plan = {};
  plan.scales.push_back({.factor = 0.0});
  expect_invalid(plan);
  plan = {};
  plan.scales.push_back({.factor = 1.0, .from_s = 10.0, .to_s = 5.0});
  expect_invalid(plan);
  plan = {};
  plan.switches.push_back({.at_s = 10.0, .blackout_s = -1.0});
  expect_invalid(plan);
  plan = {};
  plan.rtt_windows.push_back({.from_s = 0.0, .to_s = 10.0, .extra_s = -0.1});
  expect_invalid(plan);
}

TEST(Profile, SerializeParseRoundTripsEveryField) {
  FaultProfile profile;
  profile.name = "kitchen-sink";
  profile.plan.outages.push_back(
      {.start_s = 45.0, .duration_s = 4.0, .period_s = 90.0, .floor_mbps = 0.25});
  profile.plan.scales.push_back(
      {.factor = 0.35, .from_s = 60.0, .to_s = kInfSeconds});
  profile.plan.switches.push_back(
      {.at_s = 120.0, .blackout_s = 2.0, .factor = 0.6});
  profile.plan.rtt_windows.push_back(
      {.from_s = 10.0, .to_s = 200.0, .extra_s = 0.08});
  profile.transport.fail_prob = 0.04;
  profile.transport.fail_frac_lo = 0.2;
  profile.transport.fail_frac_hi = 0.8;
  profile.transport.timeout_prob = 0.015;
  profile.transport.timeout_s = 3.5;
  profile.transport.max_retries = 5;
  profile.transport.backoff_base_s = 0.25;
  profile.transport.backoff_mult = 1.5;
  profile.transport.max_backoff_s = 4.0;
  profile.transport.retry_budget = 17;
  profile.transport.failover = true;
  profile.transport.failover_after = 3;
  profile.transport.secondary_scale = 0.65;

  const FaultProfile parsed = FaultProfile::Parse(profile.Serialize());
  EXPECT_EQ(parsed.name, "kitchen-sink");
  ASSERT_EQ(parsed.plan.outages.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.plan.outages[0].start_s, 45.0);
  EXPECT_DOUBLE_EQ(parsed.plan.outages[0].duration_s, 4.0);
  EXPECT_DOUBLE_EQ(parsed.plan.outages[0].period_s, 90.0);
  EXPECT_DOUBLE_EQ(parsed.plan.outages[0].floor_mbps, 0.25);
  ASSERT_EQ(parsed.plan.scales.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.plan.scales[0].factor, 0.35);
  EXPECT_DOUBLE_EQ(parsed.plan.scales[0].from_s, 60.0);
  EXPECT_EQ(parsed.plan.scales[0].to_s, kInfSeconds);
  ASSERT_EQ(parsed.plan.switches.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.plan.switches[0].at_s, 120.0);
  EXPECT_DOUBLE_EQ(parsed.plan.switches[0].blackout_s, 2.0);
  EXPECT_DOUBLE_EQ(parsed.plan.switches[0].factor, 0.6);
  ASSERT_EQ(parsed.plan.rtt_windows.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.plan.rtt_windows[0].extra_s, 0.08);
  EXPECT_DOUBLE_EQ(parsed.transport.fail_prob, 0.04);
  EXPECT_DOUBLE_EQ(parsed.transport.fail_frac_lo, 0.2);
  EXPECT_DOUBLE_EQ(parsed.transport.fail_frac_hi, 0.8);
  EXPECT_DOUBLE_EQ(parsed.transport.timeout_prob, 0.015);
  EXPECT_DOUBLE_EQ(parsed.transport.timeout_s, 3.5);
  EXPECT_EQ(parsed.transport.max_retries, 5);
  EXPECT_DOUBLE_EQ(parsed.transport.backoff_base_s, 0.25);
  EXPECT_DOUBLE_EQ(parsed.transport.backoff_mult, 1.5);
  EXPECT_DOUBLE_EQ(parsed.transport.max_backoff_s, 4.0);
  EXPECT_EQ(parsed.transport.retry_budget, 17);
  EXPECT_TRUE(parsed.transport.failover);
  EXPECT_EQ(parsed.transport.failover_after, 3);
  EXPECT_DOUBLE_EQ(parsed.transport.secondary_scale, 0.65);
}

TEST(Profile, ParseRejectsUnknownSectionsAndBadValues) {
  EXPECT_THROW((void)FaultProfile::Parse("bogus key=1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::Parse("outage nope=1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::Parse("transport fail=abc\n"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultProfile::Parse("transport fail=1.5\n"),
               std::invalid_argument);
  // Comments and blank lines are fine.
  const FaultProfile ok =
      FaultProfile::Parse("# comment\n\ntransport fail=0.1\n");
  EXPECT_DOUBLE_EQ(ok.transport.fail_prob, 0.1);
}

TEST(Profile, BuiltinsHaveFixedOrderAndValidate) {
  const auto names = BuiltinProfileNames();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names[0], "none");
  for (const auto& name : names) {
    const FaultProfile profile = BuiltinProfile(name);
    EXPECT_EQ(profile.name, name);
    profile.plan.Validate();
    profile.transport.Validate();
    // Each built-in survives its own round-trip.
    EXPECT_EQ(FaultProfile::Parse(profile.Serialize()).name, name);
  }
  EXPECT_TRUE(BuiltinProfile("none").IsNoop());
  EXPECT_FALSE(BuiltinProfile("flaky-transport").IsNoop());
  EXPECT_THROW((void)BuiltinProfile("bogus"), std::invalid_argument);
}

TEST(Profile, LoadProfileResolvesNamesAndFiles) {
  EXPECT_EQ(LoadProfile("periodic-outage").name, "periodic-outage");
  const auto path =
      std::filesystem::temp_directory_path() / "soda_fault_profile_test.cfg";
  std::ofstream(path) << "profile name=from-file\n"
                      << "scale factor=0.5 from=0 to=inf\n";
  const FaultProfile loaded = LoadProfile(path.string());
  EXPECT_EQ(loaded.name, "from-file");
  ASSERT_EQ(loaded.plan.scales.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.plan.scales[0].factor, 0.5);
  std::filesystem::remove(path);
  EXPECT_THROW((void)LoadProfile("/nonexistent/profile.cfg"),
               std::invalid_argument);
}

TEST(Transport, ValidationRejectsBadParameters) {
  const auto expect_invalid = [](TransportFaults faults) {
    EXPECT_THROW(faults.Validate(), std::invalid_argument);
  };
  TransportFaults faults;
  faults.fail_prob = -0.1;
  expect_invalid(faults);
  faults = {};
  faults.fail_prob = 0.7;
  faults.timeout_prob = 0.7;  // sum > 1
  expect_invalid(faults);
  faults = {};
  faults.fail_frac_lo = 0.9;
  faults.fail_frac_hi = 0.1;
  expect_invalid(faults);
  faults = {};
  faults.timeout_prob = 0.1;
  faults.timeout_s = 0.0;
  expect_invalid(faults);
  faults = {};
  faults.max_retries = -1;
  expect_invalid(faults);
  faults = {};
  faults.backoff_mult = 0.5;
  expect_invalid(faults);
  faults = {};
  faults.retry_budget = -2;
  expect_invalid(faults);
  faults = {};
  faults.failover_after = 0;
  expect_invalid(faults);
  faults = {};
  faults.secondary_scale = 0.0;
  expect_invalid(faults);
  TransportFaults ok;
  ok.fail_prob = 0.5;
  ok.timeout_prob = 0.5;
  EXPECT_NO_THROW(ok.Validate());
}

TEST(Transport, MixSeedIsPureAndDecorrelated) {
  EXPECT_EQ(MixSeed(1, 0), MixSeed(1, 0));
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(1, 0), MixSeed(2, 0));
  static_assert(MixSeed(3, 4) == MixSeed(3, 4));
}

}  // namespace
}  // namespace soda::fault
