#include "theory/constants.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace soda::theory {
namespace {

SystemParameters Base() {
  SystemParameters p;
  p.omega_min_mbps = 5.0;
  p.omega_max_mbps = 50.0;
  p.r_min_mbps = 1.0;
  p.r_max_mbps = 60.0;
  p.x_max_s = 20.0;
  p.epsilon = 0.2;
  p.beta = 25.0;
  p.gamma = 50.0;
  return p;
}

TEST(DecayConstants, RhoInUnitInterval) {
  const DecayConstants dc = ComputeDecayConstants(Base());
  EXPECT_GT(dc.rho, 0.0);
  EXPECT_LT(dc.rho, 1.0);
  EXPECT_GT(dc.c, 0.0);
  EXPECT_GT(dc.ell, 0.0);
}

TEST(DecayConstants, AssumptionDetection) {
  SystemParameters p = Base();
  // delta = 1 - 50/60 > 0 but omega_min / r_min = 5 < x_max = 20: the
  // reachability half of Assumption A.1 fails.
  EXPECT_FALSE(ComputeDecayConstants(p).assumption_holds);

  p.omega_min_mbps = 25.0;
  p.r_min_mbps = 1.0;
  p.x_max_s = 20.0;  // 25 / 1 >= 20 and delta still positive
  EXPECT_TRUE(ComputeDecayConstants(p).assumption_holds);

  p.omega_max_mbps = 70.0;  // exceeds r_max: delta <= 0
  EXPECT_FALSE(ComputeDecayConstants(p).assumption_holds);
}

TEST(DecayConstants, SteeperBufferCostFasterDecay) {
  // Larger epsilon*beta (more strongly convex buffer cost) shrinks rho:
  // perturbations die out faster.
  SystemParameters weak = Base();
  weak.beta = 5.0;
  SystemParameters steep = Base();
  steep.beta = 100.0;
  EXPECT_LT(ComputeDecayConstants(steep).rho, ComputeDecayConstants(weak).rho);
}

TEST(DecayConstants, LargerSwitchingWeightSlowerDecay) {
  // gamma enters the smoothness constant ell: stronger coupling between
  // steps propagates perturbations further (rho grows).
  SystemParameters small = Base();
  small.gamma = 5.0;
  SystemParameters large = Base();
  large.gamma = 500.0;
  EXPECT_GT(ComputeDecayConstants(large).rho, ComputeDecayConstants(small).rho);
}

TEST(DecayConstants, TighterBandwidthSlackFasterDecayInDelta) {
  // Smaller delta (omega_max close to r_max) means more steps d =
  // ceil(x_max/delta) in the exponent, pushing rho toward 1.
  SystemParameters loose = Base();
  loose.omega_max_mbps = 30.0;  // delta = 0.5
  SystemParameters tight = Base();
  tight.omega_max_mbps = 59.0;  // delta ~ 0.017
  EXPECT_LT(ComputeDecayConstants(loose).rho, ComputeDecayConstants(tight).rho);
}

TEST(DecayConstants, MinimalHorizonFinitePositive) {
  const DecayConstants dc = ComputeDecayConstants(Base());
  const double k = MinimalHorizonForGuarantee(dc);
  EXPECT_GT(k, 0.0);
  EXPECT_TRUE(std::isfinite(k));
}

TEST(DecayConstants, ValidatesParameters) {
  SystemParameters bad = Base();
  bad.omega_min_mbps = 0.0;
  EXPECT_THROW((void)ComputeDecayConstants(bad), std::invalid_argument);
  bad = Base();
  bad.epsilon = 0.0;
  EXPECT_THROW((void)ComputeDecayConstants(bad), std::invalid_argument);
  bad = Base();
  bad.r_max_mbps = bad.r_min_mbps;
  EXPECT_THROW((void)ComputeDecayConstants(bad), std::invalid_argument);
}

}  // namespace
}  // namespace soda::theory
