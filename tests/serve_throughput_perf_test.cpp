// Serving-throughput regression pin. The functional half (decisions are
// valid, table-served, and deterministic across repeats) runs in every
// build; the >= 1M decisions/sec assertion is compiled in only for Release
// (SODA_PERF_ASSERT) so debug/sanitizer builds don't flake. Run via
// `ctest -L perf -C Release` (see EXPERIMENTS.md). The pin is
// single-threaded on purpose: it must hold on a one-core box, and
// per-decision cost — not fan-out — is what the pin protects.
#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "media/bitrate_ladder.hpp"
#include "serve/decision_service.hpp"

namespace soda::serve {
namespace {

TEST(ServeThroughputPerf, QuantizedBatchPathSustainsOneMillionPerSecond) {
  DecisionService service({.base_seed = 20240804});
  TenantConfig tenant_config{media::YoutubeHfr4kLadder()};
  const TenantId tenant = service.RegisterTenant(tenant_config);

  constexpr int kSessions = 120;
  std::vector<std::string> ids;
  ids.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    ids.push_back("perf-session-" + std::to_string(s));
  }
  for (int s = 0; s < kSessions; ++s) {
    service.Ingest({.type = EventType::kStartup,
                    .tenant = tenant,
                    .session_id = ids[s],
                    .now_s = 0.0,
                    .duration_s = 0.4});
    // Two samples warm the dual EMA so decisions take the table path.
    service.Ingest({.type = EventType::kThroughputSample,
                    .tenant = tenant,
                    .session_id = ids[s],
                    .now_s = 1.0,
                    .duration_s = 2.0,
                    .mbps = 4.0 + 0.1 * (s % 40)});
    service.Ingest({.type = EventType::kThroughputSample,
                    .tenant = tenant,
                    .session_id = ids[s],
                    .now_s = 3.0,
                    .duration_s = 2.0,
                    .mbps = 6.0 + 0.1 * (s % 40)});
  }

  std::vector<DecisionRequest> requests(kSessions);
  std::vector<Decision> out(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    requests[s] = {.tenant = tenant,
                   .session_id = ids[s],
                   .buffer_s = 0.1 * ((7 * s) % 200)};
  }

  // Warm up (table adoption, first-touch faults), then measure.
  service.DecideBatch(requests, out, /*threads=*/1);
  for (const Decision& d : out) {
    EXPECT_GE(d.rung, 0);
    EXPECT_LT(d.rung, static_cast<media::Rung>(tenant_config.ladder.Size()));
    EXPECT_TRUE(d.from_table);
  }
  const std::vector<Decision> first(out.begin(), out.end());

  constexpr int kBatches = 2000;  // 240k decisions per repetition
  double best_per_sec = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int b = 0; b < kBatches; ++b) {
      service.DecideBatch(requests, out, /*threads=*/1);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    best_per_sec = std::max(
        best_per_sec,
        static_cast<double>(kBatches) * kSessions / elapsed.count());
  }
  RecordProperty("decisions_per_sec", std::to_string(best_per_sec));

  // Decisions are pure reads: the measured repetitions must reproduce the
  // warm-up batch bit-for-bit.
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(out[s].rung, first[s].rung) << s;
    ASSERT_EQ(out[s].predicted_mbps, first[s].predicted_mbps) << s;
  }

#ifdef SODA_PERF_ASSERT
  EXPECT_GE(best_per_sec, 1.0e6)
      << "serving throughput regressed: " << best_per_sec
      << " decisions/sec (pin is 1M/s single-threaded)";
#else
  GTEST_LOG_(INFO) << "throughput (unpinned build): " << best_per_sec
                   << " decisions/sec";
#endif
}

}  // namespace
}  // namespace soda::serve
