// Property tests for the solvers' branch-and-bound pruning and the
// bound-only warm start: across randomized (ladder, weights, buffer,
// predictions) instances, the pruned search must return *exactly* the
// unpruned search's result — same feasibility, first rung, objective
// (bitwise, not approximately: ties between up/down branches are resolved
// by comparing objectives, so even an ulp of drift could flip a decision)
// and same full plan — while never evaluating more sequences.
#include <vector>

#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "media/bitrate_ladder.hpp"
#include "util/rng.hpp"

namespace soda::core {
namespace {

struct FuzzInstance {
  media::BitrateLadder ladder;
  CostModelConfig model_config;
  SolverConfig solver_config;  // enable_pruning overridden per solver
  std::vector<double> predictions;
  double buffer_s = 0.0;
  media::Rung prev_rung = -1;
};

FuzzInstance MakeInstance(Rng& rng) {
  const int rungs = 2 + static_cast<int>(rng.UniformInt(6));  // 2..7
  std::vector<double> bitrates;
  double bitrate = rng.Uniform(0.3, 2.0);
  for (int r = 0; r < rungs; ++r) {
    bitrates.push_back(bitrate);
    bitrate *= rng.Uniform(1.3, 2.5);
  }

  FuzzInstance instance{media::BitrateLadder(std::move(bitrates)),
                        CostModelConfig{}, SolverConfig{}, {}, 0.0, -1};

  instance.model_config.max_buffer_s = rng.Uniform(8.0, 30.0);
  instance.model_config.target_buffer_s =
      rng.Uniform(0.3, 0.8) * instance.model_config.max_buffer_s;
  instance.model_config.dt_s = rng.Uniform(1.0, 4.0);
  instance.model_config.weights.beta = rng.Uniform(0.0, 20.0);
  instance.model_config.weights.gamma = rng.Uniform(0.0, 120.0);
  instance.model_config.weights.kappa = rng.Chance(0.5) ? 0.0 : 8.0;
  instance.model_config.weights.epsilon = rng.Uniform(0.05, 0.8);
  instance.model_config.weights.barrier = rng.Uniform(0.0, 300.0);

  instance.solver_config.hard_buffer_constraints = rng.Chance(0.3);
  instance.solver_config.tail_intervals =
      rng.Chance(0.5) ? 0.0 : rng.Uniform(1.0, 10.0);

  const int horizon = 1 + static_cast<int>(rng.UniformInt(6));  // 1..6
  for (int k = 0; k < horizon; ++k) {
    // Log-uniform throughput in roughly [0.2, 90] Mb/s, occasionally with a
    // cliff to stress feasibility edges under hard constraints.
    double mbps = std::exp(rng.Uniform(-1.6, 4.5));
    if (rng.Chance(0.1)) mbps *= 0.05;
    instance.predictions.push_back(mbps);
  }
  instance.buffer_s = rng.Uniform(0.0, instance.model_config.max_buffer_s);
  instance.prev_rung =
      static_cast<media::Rung>(rng.UniformInt(static_cast<std::uint64_t>(
          instance.ladder.Size() + 1))) - 1;  // -1..rungs-1
  return instance;
}

// Exact-identity check between a pruned/warm result and the reference.
void ExpectIdentical(const PlanResult& result, const PlanResult& reference,
                     const char* label) {
  ASSERT_EQ(result.feasible, reference.feasible) << label;
  if (!reference.feasible) return;
  EXPECT_EQ(result.first_rung, reference.first_rung) << label;
  EXPECT_EQ(result.objective, reference.objective) << label;  // bitwise
  EXPECT_EQ(result.plan, reference.plan) << label;
}

class SolverPruneFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPruneFuzzTest, PrunedAndWarmResultsIdenticalToUnpruned) {
  Rng rng(0x50DA0000u + static_cast<std::uint64_t>(GetParam()));
  for (int iteration = 0; iteration < 40; ++iteration) {
    const FuzzInstance instance = MakeInstance(rng);
    const CostModel model(instance.ladder, instance.model_config);

    SolverConfig off = instance.solver_config;
    off.enable_pruning = false;
    SolverConfig on = instance.solver_config;
    on.enable_pruning = true;

    // Monotonic solver: pruned == unpruned, never more sequences.
    const MonotonicSolver mono_off(model, off);
    const MonotonicSolver mono_on(model, on);
    const PlanResult mono_reference = mono_off.Solve(
        instance.predictions, instance.buffer_s, instance.prev_rung);
    const PlanResult mono_pruned = mono_on.Solve(
        instance.predictions, instance.buffer_s, instance.prev_rung);
    ExpectIdentical(mono_pruned, mono_reference, "monotonic pruned");
    EXPECT_LE(mono_pruned.sequences_evaluated,
              mono_reference.sequences_evaluated);

    // Brute force: pruned == unpruned, never more sequences.
    const BruteForceSolver brute_off(model, off);
    const BruteForceSolver brute_on(model, on);
    const PlanResult brute_reference = brute_off.Solve(
        instance.predictions, instance.buffer_s, instance.prev_rung);
    const PlanResult brute_pruned = brute_on.Solve(
        instance.predictions, instance.buffer_s, instance.prev_rung);
    ExpectIdentical(brute_pruned, brute_reference, "brute pruned");
    EXPECT_LE(brute_pruned.sequences_evaluated,
              brute_reference.sequences_evaluated);

    // The monotone optimum can never beat the global optimum.
    if (mono_reference.feasible && brute_reference.feasible) {
      EXPECT_GE(mono_reference.objective, brute_reference.objective - 1e-9);
    }

    // Warm starts are bound-only: seeding with the solver's own plan, a
    // shifted variant, or garbage must leave the result identical to cold.
    if (mono_reference.feasible) {
      const PlanResult warm_own =
          mono_on.Solve(instance.predictions, instance.buffer_s,
                        instance.prev_rung, mono_reference.plan);
      ExpectIdentical(warm_own, mono_reference, "monotonic warm(own plan)");
      EXPECT_LE(warm_own.sequences_evaluated,
                mono_reference.sequences_evaluated);

      std::vector<media::Rung> shifted(mono_reference.plan.begin() + 1,
                                       mono_reference.plan.end());
      shifted.push_back(mono_reference.plan.back());
      const PlanResult warm_shifted =
          mono_on.Solve(instance.predictions, instance.buffer_s,
                        instance.prev_rung, shifted);
      ExpectIdentical(warm_shifted, mono_reference,
                      "monotonic warm(shifted plan)");
    }
    {
      std::vector<media::Rung> random_plan;
      for (std::size_t k = 0; k < instance.predictions.size(); ++k) {
        random_plan.push_back(static_cast<media::Rung>(
            rng.UniformInt(static_cast<std::uint64_t>(instance.ladder.Size()))));
      }
      const PlanResult mono_warm_random =
          mono_on.Solve(instance.predictions, instance.buffer_s,
                        instance.prev_rung, random_plan);
      ExpectIdentical(mono_warm_random, mono_reference,
                      "monotonic warm(random plan)");
      const PlanResult brute_warm_random =
          brute_on.Solve(instance.predictions, instance.buffer_s,
                         instance.prev_rung, random_plan);
      ExpectIdentical(brute_warm_random, brute_reference,
                      "brute warm(random plan)");
      EXPECT_LE(brute_warm_random.sequences_evaluated,
                brute_reference.sequences_evaluated);
    }

    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing instance: rungs=" << instance.ladder.Size()
                    << " horizon=" << instance.predictions.size()
                    << " buffer=" << instance.buffer_s
                    << " prev=" << instance.prev_rung << " hard="
                    << instance.solver_config.hard_buffer_constraints
                    << " iteration=" << iteration;
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPruneFuzzTest, ::testing::Range(0, 12));

// Pruning must actually help on the paper's standard configuration, not
// just break even (the >= 30% reduction claimed in BENCH_solver.json is
// measured over these shapes).
TEST(SolverPruning, ReducesSequencesOnBenchShapes) {
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  CostModelConfig model_config;
  model_config.target_buffer_s = 12.0;
  model_config.max_buffer_s = 20.0;
  model_config.dt_s = 2.0;
  const CostModel model(ladder, model_config);
  SolverConfig off;
  off.enable_pruning = false;
  const MonotonicSolver pruned(model);
  const MonotonicSolver unpruned(model, off);

  const std::vector<std::vector<double>> shapes = {
      {10.0, 10.0, 10.0, 10.0, 10.0},
      {6.0, 8.0, 10.0, 12.0, 14.0},
      {10.0, 13.0, 7.5, 11.0, 9.0},
  };
  for (const auto& predictions : shapes) {
    const PlanResult a = pruned.Solve(predictions, 10.0, 2);
    const PlanResult b = unpruned.Solve(predictions, 10.0, 2);
    ExpectIdentical(a, b, "bench shape");
    EXPECT_LE(static_cast<double>(a.sequences_evaluated),
              0.7 * static_cast<double>(b.sequences_evaluated));
  }
}

}  // namespace
}  // namespace soda::core
