#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace soda::core {
namespace {

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

CostModelConfig BaseConfig(double gamma = 50.0) {
  CostModelConfig config;
  config.target_buffer_s = 12.0;
  config.max_buffer_s = 20.0;
  config.dt_s = 2.0;
  config.weights.beta = 25.0;
  config.weights.gamma = gamma;
  return config;
}

std::vector<double> Constant(double mbps, int k) {
  return std::vector<double>(static_cast<std::size_t>(k), mbps);
}

bool IsMonotone(const std::vector<media::Rung>& plan, media::Rung anchor,
                bool has_prev) {
  std::vector<media::Rung> extended;
  if (has_prev) extended.push_back(anchor);
  extended.insert(extended.end(), plan.begin(), plan.end());
  const bool non_decreasing =
      std::is_sorted(extended.begin(), extended.end());
  const bool non_increasing =
      std::is_sorted(extended.begin(), extended.end(), std::greater<>());
  return non_decreasing || non_increasing;
}

TEST(MonotonicSolver, RequiresPredictions) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  EXPECT_THROW((void)solver.Solve({}, 10.0, 2), std::invalid_argument);
  const std::vector<double> bad = {5.0, -1.0};
  EXPECT_THROW((void)solver.Solve(bad, 10.0, 2), std::invalid_argument);
}

TEST(MonotonicSolver, PlansAreMonotone) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const double mbps = std::exp(rng.Uniform(std::log(0.5), std::log(120.0)));
    const double buffer = rng.Uniform(0.0, 20.0);
    const auto prev = static_cast<media::Rung>(rng.UniformInt(6));
    const PlanResult plan = solver.Solve(Constant(mbps, 5), buffer, prev);
    if (!plan.feasible) continue;
    EXPECT_TRUE(IsMonotone(plan.plan, prev, true))
        << "mbps=" << mbps << " buffer=" << buffer << " prev=" << prev;
  }
}

TEST(MonotonicSolver, SteadyStatePicksThroughputMatchedRung) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  // Buffer at target, throughput exactly at a rung: stay there.
  const PlanResult plan = solver.Solve(Constant(12.0, 5), 12.0, 3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.first_rung, 3);
}

TEST(MonotonicSolver, LowBufferBacksOff) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  const PlanResult low = solver.Solve(Constant(12.0, 5), 2.0, 3);
  ASSERT_TRUE(low.feasible);
  EXPECT_LT(low.first_rung, 3);  // refill the buffer with a lower rung
}

TEST(MonotonicSolver, HighBufferMoreAggressive) {
  // The Fig. 5 property: at fixed throughput, the chosen rung is
  // non-decreasing in buffer level.
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  media::Rung last = 0;
  for (double buffer = 1.0; buffer <= 19.0; buffer += 1.0) {
    const PlanResult plan = solver.Solve(Constant(10.0, 5), buffer, 2);
    ASSERT_TRUE(plan.feasible);
    EXPECT_GE(plan.first_rung, last);
    last = plan.first_rung;
  }
}

TEST(MonotonicSolver, MatchesBruteForceOnExhaustiveGrid) {
  // With a strong switching weight the monotone restriction is lossless on
  // a grid of situations (Theorem 4.3's regime).
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig(/*gamma=*/100.0));
  const MonotonicSolver monotonic(model);
  const BruteForceSolver brute(model);
  int mismatches = 0;
  int total = 0;
  for (double mbps : {1.0, 3.0, 6.0, 10.0, 20.0, 50.0}) {
    for (double buffer : {2.0, 6.0, 10.0, 14.0, 18.0}) {
      for (media::Rung prev = 0; prev < 6; ++prev) {
        const auto predictions = Constant(mbps, 4);
        const PlanResult a = monotonic.Solve(predictions, buffer, prev);
        const PlanResult b = brute.Solve(predictions, buffer, prev);
        ASSERT_EQ(a.feasible, b.feasible);
        if (!a.feasible) continue;
        ++total;
        if (a.first_rung != b.first_rung) ++mismatches;
        // The monotone objective can never beat the brute force optimum.
        EXPECT_GE(a.objective, b.objective - 1e-9);
      }
    }
  }
  EXPECT_GT(total, 100);
  EXPECT_LE(static_cast<double>(mismatches) / total, 0.05);
}

TEST(MonotonicSolver, PolynomialSequenceCount) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  // The paper's enumeration claim is about the raw monotone search space, so
  // measure it with branch-and-bound pruning disabled.
  SolverConfig unpruned;
  unpruned.enable_pruning = false;
  const MonotonicSolver monotonic(model, unpruned);
  const BruteForceSolver brute(model, unpruned);
  const auto predictions = Constant(10.0, 5);
  const PlanResult a = monotonic.Solve(predictions, 10.0, 2);
  const PlanResult b = brute.Solve(predictions, 10.0, 2);
  // The paper's claim: about 200 sequences vs |R|^K = 7776.
  EXPECT_LT(a.sequences_evaluated, 600);
  EXPECT_GT(a.sequences_evaluated, 10);
  EXPECT_GT(b.sequences_evaluated, 1000);
  EXPECT_LT(a.sequences_evaluated, b.sequences_evaluated / 4);

  // Pruning (the default) keeps the same plan while evaluating strictly
  // fewer sequences on this instance.
  const MonotonicSolver pruned(model);
  const PlanResult p = pruned.Solve(predictions, 10.0, 2);
  ASSERT_TRUE(p.feasible);
  EXPECT_EQ(p.first_rung, a.first_rung);
  EXPECT_EQ(p.objective, a.objective);
  EXPECT_EQ(p.plan, a.plan);
  EXPECT_LT(p.sequences_evaluated, a.sequences_evaluated);
}

TEST(MonotonicSolver, HardConstraintsRejectOverflow) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  SolverConfig hard;
  hard.hard_buffer_constraints = true;
  const MonotonicSolver solver(model, hard);
  // Buffer nearly full and enormous throughput: even the top rung would
  // overflow -> no feasible plan (the blank Fig. 5 region).
  const PlanResult plan = solver.Solve(Constant(3000.0, 3), 19.9, 5);
  EXPECT_FALSE(plan.feasible);
}

TEST(MonotonicSolver, HardConstraintsRejectUnderflow) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  SolverConfig hard;
  hard.hard_buffer_constraints = true;
  const MonotonicSolver solver(model, hard);
  // Empty buffer and tiny throughput: every rung drains below zero.
  const PlanResult plan = solver.Solve(Constant(0.05, 3), 0.0, 0);
  EXPECT_FALSE(plan.feasible);
}

TEST(MonotonicSolver, SoftConstraintsAlwaysFeasible) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);  // soft by default
  EXPECT_TRUE(solver.Solve(Constant(3000.0, 3), 19.9, 5).feasible);
  EXPECT_TRUE(solver.Solve(Constant(0.05, 3), 0.0, 0).feasible);
}

TEST(MonotonicSolver, NoPrevAnchorsAtThroughput) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  const PlanResult plan = solver.Solve(Constant(12.0, 5), 12.0, -1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.first_rung, 3);  // 12 Mb/s rung
}

TEST(MonotonicSolver, ObjectiveMatchesEvaluatePlan) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  const auto predictions = Constant(9.0, 4);
  const PlanResult plan = solver.Solve(predictions, 8.0, 2);
  ASSERT_TRUE(plan.feasible);
  const double replayed =
      EvaluatePlan(model, predictions, plan.plan, 8.0, 2, false);
  EXPECT_NEAR(plan.objective, replayed, 1e-9);
}

TEST(BruteForce, GuardsSearchSpace) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const BruteForceSolver solver(model);
  EXPECT_THROW((void)solver.Solve(Constant(10.0, 12), 10.0, 2),
               std::invalid_argument);
}

TEST(BruteForce, FindsGlobalOptimumOnTinyInstance) {
  // 2-rung ladder, K=2: enumerate by hand.
  const media::BitrateLadder ladder({2.0, 4.0});
  CostModelConfig config;
  config.target_buffer_s = 6.0;
  config.max_buffer_s = 10.0;
  config.dt_s = 2.0;
  const CostModel model(ladder, config);
  SolverConfig unpruned;
  unpruned.enable_pruning = false;
  const BruteForceSolver solver(model, unpruned);
  const auto predictions = Constant(3.0, 2);
  const PlanResult plan = solver.Solve(predictions, 6.0, 0);
  ASSERT_TRUE(plan.feasible);
  double best = 1e18;
  media::Rung best_first = -1;
  for (media::Rung r1 = 0; r1 < 2; ++r1) {
    for (media::Rung r2 = 0; r2 < 2; ++r2) {
      const std::vector<media::Rung> candidate = {r1, r2};
      const double cost =
          EvaluatePlan(model, predictions, candidate, 6.0, 0, false);
      if (cost < best) {
        best = cost;
        best_first = r1;
      }
    }
  }
  EXPECT_EQ(plan.first_rung, best_first);
  EXPECT_NEAR(plan.objective, best, 1e-9);
  EXPECT_EQ(plan.sequences_evaluated, 4);
}

TEST(EvaluatePlanFn, InfeasibleUnderHardConstraints) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const std::vector<double> predictions = {0.05, 0.05};
  const std::vector<media::Rung> plan = {5, 5};
  EXPECT_TRUE(std::isinf(
      EvaluatePlan(model, predictions, plan, 0.5, 5, true)));
  EXPECT_TRUE(std::isfinite(
      EvaluatePlan(model, predictions, plan, 0.5, 5, false)));
}

TEST(EvaluatePlanFn, LengthMismatchThrows) {
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const std::vector<double> predictions = {5.0, 5.0};
  const std::vector<media::Rung> plan = {1};
  EXPECT_THROW((void)EvaluatePlan(model, predictions, plan, 5.0, 1, false),
               std::invalid_argument);
}

TEST(Solvers, PerIntervalPredictionsUsed) {
  // A cliff in the predictions should make the planner more conservative
  // than a uniformly high forecast.
  const auto ladder = Ladder();
  const CostModel model(ladder, BaseConfig());
  const MonotonicSolver solver(model);
  const std::vector<double> cliff = {20.0, 2.0, 2.0, 2.0, 2.0};
  const PlanResult with_cliff = solver.Solve(cliff, 8.0, 3);
  const PlanResult uniform = solver.Solve(Constant(20.0, 5), 8.0, 3);
  ASSERT_TRUE(with_cliff.feasible);
  ASSERT_TRUE(uniform.feasible);
  EXPECT_LE(with_cliff.first_rung, uniform.first_rung);
}

}  // namespace
}  // namespace soda::core
