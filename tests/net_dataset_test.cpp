#include "net/dataset.hpp"

#include <gtest/gtest.h>

#include "net/trace_stats.hpp"

namespace soda::net {
namespace {

class DatasetCalibrationTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetCalibrationTest, SessionsAreTenMinutes) {
  const DatasetEmulator emulator(GetParam());
  Rng rng(1);
  const ThroughputTrace session = emulator.MakeSession(rng);
  EXPECT_NEAR(session.DurationS(), 600.0, 1.0);
}

TEST_P(DatasetCalibrationTest, AggregateStatsNearPaperTargets) {
  const DatasetEmulator emulator(GetParam());
  Rng rng(20240804);
  const auto sessions = emulator.MakeSessions(300, rng);
  const DatasetStats stats = ComputeDatasetStats(sessions, 1.0);
  const DatasetProfile& profile = emulator.Profile();
  // Within 20% of the paper's Fig. 9 means and rel-stds.
  EXPECT_NEAR(stats.mean_mbps, profile.target_mean_mbps,
              0.20 * profile.target_mean_mbps)
      << DatasetName(GetParam());
  EXPECT_NEAR(stats.mean_rel_std, profile.target_rel_std,
              0.20 * profile.target_rel_std)
      << DatasetName(GetParam());
}

TEST_P(DatasetCalibrationTest, ThroughputAlwaysPositive) {
  const DatasetEmulator emulator(GetParam());
  Rng rng(3);
  const auto sessions = emulator.MakeSessions(10, rng);
  for (const auto& session : sessions) {
    for (const auto& sample : session.Samples()) {
      EXPECT_GT(sample.mbps, 0.0);
    }
  }
}

TEST_P(DatasetCalibrationTest, Deterministic) {
  const DatasetEmulator emulator(GetParam());
  Rng rng1(42);
  Rng rng2(42);
  const ThroughputTrace a = emulator.MakeSession(rng1);
  const ThroughputTrace b = emulator.MakeSession(rng2);
  ASSERT_EQ(a.Samples().size(), b.Samples().size());
  for (std::size_t i = 0; i < a.Samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.Samples()[i].mbps, b.Samples()[i].mbps);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetCalibrationTest,
                         ::testing::Values(DatasetKind::kPuffer,
                                           DatasetKind::k5G,
                                           DatasetKind::k4G),
                         [](const auto& param_info) {
                           return DatasetName(param_info.param);
                         });

TEST(Dataset, RelativeOrderingMatchesPaper) {
  // Puffer is fastest and most stable; 4G slowest; 5G most volatile.
  Rng rng(7);
  const auto puffer =
      DatasetEmulator(DatasetKind::kPuffer).MakeSessions(150, rng);
  const auto fiveg = DatasetEmulator(DatasetKind::k5G).MakeSessions(150, rng);
  const auto fourg = DatasetEmulator(DatasetKind::k4G).MakeSessions(150, rng);
  const DatasetStats sp = ComputeDatasetStats(puffer);
  const DatasetStats s5 = ComputeDatasetStats(fiveg);
  const DatasetStats s4 = ComputeDatasetStats(fourg);
  EXPECT_GT(sp.mean_mbps, s5.mean_mbps);
  EXPECT_GT(s5.mean_mbps, s4.mean_mbps);
  EXPECT_LT(sp.mean_rel_std, s4.mean_rel_std);
  EXPECT_LT(s4.mean_rel_std, s5.mean_rel_std);
}

TEST(Dataset, Names) {
  EXPECT_EQ(DatasetName(DatasetKind::kPuffer), "Puffer");
  EXPECT_EQ(DatasetName(DatasetKind::k5G), "5G");
  EXPECT_EQ(DatasetName(DatasetKind::k4G), "4G");
}

TEST(Dataset, ProfileTargetsMatchFig9) {
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::kPuffer).target_mean_mbps, 57.1);
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::k5G).target_mean_mbps, 31.3);
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::k4G).target_mean_mbps, 13.0);
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::kPuffer).target_rel_std, 0.472);
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::k5G).target_rel_std, 1.33);
  EXPECT_DOUBLE_EQ(ProfileFor(DatasetKind::k4G).target_rel_std, 0.806);
}

}  // namespace
}  // namespace soda::net
