#include "abr/bba.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace soda::abr {
namespace {

using soda::testing::ContextFixture;

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

TEST(Bba, ValidatesConfig) {
  EXPECT_THROW(BbaController({.reservoir_s = 0.0}), std::invalid_argument);
  EXPECT_THROW(BbaController({.reservoir_s = 5.0, .cushion_s = 0.0}),
               std::invalid_argument);
}

TEST(Bba, MappedRateAnchors) {
  const BbaController bba({.reservoir_s = 5.0, .cushion_s = 10.0});
  const auto ladder = Ladder();
  EXPECT_DOUBLE_EQ(bba.MappedRateMbps(ladder, 0.0), 1.5);
  EXPECT_DOUBLE_EQ(bba.MappedRateMbps(ladder, 5.0), 1.5);
  EXPECT_DOUBLE_EQ(bba.MappedRateMbps(ladder, 15.0), 60.0);
  EXPECT_DOUBLE_EQ(bba.MappedRateMbps(ladder, 20.0), 60.0);
  // Midpoint of the ramp.
  EXPECT_NEAR(bba.MappedRateMbps(ladder, 10.0), (1.5 + 60.0) / 2.0, 1e-9);
}

TEST(Bba, ReservoirPinsLowest) {
  ContextFixture fx(Ladder());
  BbaController bba;
  EXPECT_EQ(bba.ChooseRung(fx.Make(2.0, 4)), 0);
}

TEST(Bba, FullCushionPinsHighest) {
  ContextFixture fx(Ladder());
  BbaController bba;
  EXPECT_EQ(bba.ChooseRung(fx.Make(19.0, 0)), Ladder().HighestRung());
}

TEST(Bba, HysteresisHoldsInsideBand) {
  ContextFixture fx(Ladder());
  BbaController bba({.reservoir_s = 5.0, .cushion_s = 10.0});
  // At buffer 9, f(B) = 1.5 + 0.4 * 58.5 = 24.9: between rung 4 (24) and
  // rung 5 (60). From prev 4: f(B) < 60 so no up; f(B) >= 24 so no down.
  EXPECT_EQ(bba.ChooseRung(fx.Make(9.0, 4)), 4);
  // Small wiggles inside the band (f(B) still in [24, 60)) stay put.
  EXPECT_EQ(bba.ChooseRung(fx.Make(9.2, 4)), 4);
  EXPECT_EQ(bba.ChooseRung(fx.Make(11.0, 4)), 4);
}

TEST(Bba, CrossingBandMovesUpOrDown) {
  ContextFixture fx(Ladder());
  BbaController bba({.reservoir_s = 5.0, .cushion_s = 10.0});
  // f(15) = 60 >= next rung's bitrate from prev 4 -> moves up.
  EXPECT_EQ(bba.ChooseRung(fx.Make(15.0, 4)), 5);
  // f(6) = 7.35 < 24 (prev's bitrate) -> drops to highest sustainable 7.35
  // -> rung 1 (4 Mb/s)... f(6)=1.5+0.1*58.5=7.35 -> rung 2? 7.5 > 7.35, so
  // rung 1.
  EXPECT_EQ(bba.ChooseRung(fx.Make(6.0, 4)), 1);
}

TEST(Bba, IgnoresThroughput) {
  ContextFixture fx(Ladder());
  BbaController bba;
  fx.SetThroughput(0.5);
  const media::Rung slow = bba.ChooseRung(fx.Make(12.0, 3));
  fx.SetThroughput(500.0);
  const media::Rung fast = bba.ChooseRung(fx.Make(12.0, 3));
  EXPECT_EQ(slow, fast);
}

TEST(Bba, NoPrevUsesMappedRateDirectly) {
  ContextFixture fx(Ladder());
  BbaController bba({.reservoir_s = 5.0, .cushion_s = 10.0});
  EXPECT_EQ(bba.ChooseRung(fx.Make(10.0, -1)), 4);  // f=30.75 -> 24 Mb/s
}

TEST(Bba, MonotoneInBufferFromFixedPrev) {
  ContextFixture fx(Ladder());
  BbaController bba;
  media::Rung last = 0;
  for (double buffer = 0.0; buffer <= 20.0; buffer += 0.25) {
    const media::Rung r = bba.ChooseRung(fx.Make(buffer, 2));
    EXPECT_GE(r + 1, last);  // allow the hysteresis plateau around prev
    last = std::max(last, r);
  }
  EXPECT_EQ(last, Ladder().HighestRung());
}

}  // namespace
}  // namespace soda::abr
