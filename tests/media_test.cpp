#include <cmath>

#include <gtest/gtest.h>

#include "media/bitrate_ladder.hpp"
#include "media/quality.hpp"
#include "media/video_model.hpp"

namespace soda::media {
namespace {

TEST(BitrateLadder, ValidatesInput) {
  EXPECT_THROW(BitrateLadder({}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({1.0, 1.0}), std::invalid_argument);
}

TEST(BitrateLadder, BasicAccessors) {
  const BitrateLadder ladder({1.0, 2.0, 4.0});
  EXPECT_EQ(ladder.Count(), 3);
  EXPECT_DOUBLE_EQ(ladder.MinMbps(), 1.0);
  EXPECT_DOUBLE_EQ(ladder.MaxMbps(), 4.0);
  EXPECT_DOUBLE_EQ(ladder.BitrateMbps(1), 2.0);
  EXPECT_TRUE(ladder.IsValidRung(0));
  EXPECT_FALSE(ladder.IsValidRung(3));
  EXPECT_FALSE(ladder.IsValidRung(-1));
  EXPECT_THROW((void)ladder.BitrateMbps(5), std::invalid_argument);
}

TEST(BitrateLadder, HighestRungAtMost) {
  const BitrateLadder ladder({1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(ladder.HighestRungAtMost(0.5), 0);  // below min: lowest
  EXPECT_EQ(ladder.HighestRungAtMost(1.0), 0);
  EXPECT_EQ(ladder.HighestRungAtMost(3.9), 1);
  EXPECT_EQ(ladder.HighestRungAtMost(100.0), 3);
}

TEST(BitrateLadder, LowestRungAtLeastIsSection51Cap) {
  const BitrateLadder ladder({1.0, 2.0, 4.0, 8.0});
  EXPECT_EQ(ladder.LowestRungAtLeast(0.5), 0);
  EXPECT_EQ(ladder.LowestRungAtLeast(2.0), 1);
  EXPECT_EQ(ladder.LowestRungAtLeast(2.1), 2);
  EXPECT_EQ(ladder.LowestRungAtLeast(9.0), 3);  // above max: highest
}

TEST(BitrateLadder, NearestRung) {
  const BitrateLadder ladder({1.0, 2.0, 4.0});
  EXPECT_EQ(ladder.NearestRung(1.4), 0);
  EXPECT_EQ(ladder.NearestRung(1.6), 1);
  EXPECT_EQ(ladder.NearestRung(100.0), 2);
}

TEST(BitrateLadder, WithoutTopRungs) {
  const BitrateLadder ladder = YoutubeHfr4kLadder();
  const BitrateLadder trimmed = ladder.WithoutTopRungs(2);
  EXPECT_EQ(trimmed.Count(), 4);
  EXPECT_DOUBLE_EQ(trimmed.MaxMbps(), 12.0);
  EXPECT_THROW(ladder.WithoutTopRungs(6), std::invalid_argument);
  EXPECT_THROW(ladder.WithoutTopRungs(-1), std::invalid_argument);
}

TEST(BitrateLadder, PresetsMatchPaper) {
  EXPECT_EQ(YoutubeHfr4kLadder().Count(), 6);
  EXPECT_DOUBLE_EQ(YoutubeHfr4kLadder().MaxMbps(), 60.0);
  EXPECT_EQ(PrimeVideoProductionLadder().Count(), 10);
  EXPECT_DOUBLE_EQ(PrimeVideoProductionLadder().MinMbps(), 0.2);
  EXPECT_DOUBLE_EQ(PrimeVideoProductionLadder().MaxMbps(), 8.0);
  EXPECT_EQ(PufferPrototypeLadder().Count(), 5);
  EXPECT_DOUBLE_EQ(PufferPrototypeLadder().MaxMbps(), 2.0);
}

TEST(BitrateLadder, ToStringMentionsUnits) {
  EXPECT_NE(YoutubeHfr4kLadder().ToString().find("Mb/s"), std::string::npos);
}

TEST(NormalizedLogUtility, Endpoints) {
  const NormalizedLogUtility u(YoutubeHfr4kLadder());
  EXPECT_DOUBLE_EQ(u.At(1.5), 0.0);
  EXPECT_DOUBLE_EQ(u.At(60.0), 1.0);
  EXPECT_DOUBLE_EQ(u.At(0.1), 0.0);    // clamped below
  EXPECT_DOUBLE_EQ(u.At(120.0), 1.0);  // clamped above
}

TEST(NormalizedLogUtility, MonotoneIncreasing) {
  const NormalizedLogUtility u(1.0, 16.0);
  double prev = -1.0;
  for (double r = 1.0; r <= 16.0; r += 0.5) {
    const double v = u.At(r);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(NormalizedLogUtility, LogarithmicShape) {
  const NormalizedLogUtility u(1.0, 16.0);
  // log2 scale: doubling bitrate adds 1/4 of the span.
  EXPECT_NEAR(u.At(2.0), 0.25, 1e-12);
  EXPECT_NEAR(u.At(4.0), 0.5, 1e-12);
  EXPECT_NEAR(u.At(8.0), 0.75, 1e-12);
}

class DistortionTest : public ::testing::TestWithParam<DistortionModel> {};

TEST_P(DistortionTest, NormalizedDecreasingConvex) {
  const Distortion v(GetParam(), 1.5, 60.0);
  EXPECT_NEAR(v.At(1.5), 1.0, 1e-12);
  // Strictly decreasing on a grid.
  double prev = v.At(1.5);
  for (double r = 2.0; r <= 60.0; r += 0.5) {
    const double current = v.At(r);
    EXPECT_LT(current, prev);
    prev = current;
  }
  // Midpoint convexity on a coarse grid.
  for (double r = 2.0; r + 10.0 <= 60.0; r += 3.0) {
    const double mid = v.At(r + 5.0);
    EXPECT_LE(mid, (v.At(r) + v.At(r + 10.0)) / 2.0 + 1e-9);
  }
}

TEST_P(DistortionTest, ClampsOutsideRange) {
  const Distortion v(GetParam(), 1.5, 60.0);
  EXPECT_DOUBLE_EQ(v.At(0.1), v.At(1.5));
  EXPECT_DOUBLE_EQ(v.At(1000.0), v.At(60.0));
}

INSTANTIATE_TEST_SUITE_P(Models, DistortionTest,
                         ::testing::Values(DistortionModel::kInverse,
                                           DistortionModel::kLog));

TEST(Distortion, LogHitsZeroAtMax) {
  const Distortion v(DistortionModel::kLog, 1.5, 60.0);
  EXPECT_NEAR(v.At(60.0), 0.0, 1e-12);
}

TEST(Distortion, InverseMatchesFormula) {
  const Distortion v(DistortionModel::kInverse, 2.0, 8.0);
  EXPECT_DOUBLE_EQ(v.At(4.0), 0.5);  // rmin/r
}

TEST(SsimModel, SaturatesAtMax) {
  const SsimModel ssim(0.99, 2.0);
  EXPECT_DOUBLE_EQ(ssim.SsimAt(2.0), 0.99);
  EXPECT_DOUBLE_EQ(ssim.SsimAt(5.0), 0.99);
  EXPECT_DOUBLE_EQ(ssim.NormalizedAt(2.0), 1.0);
}

TEST(SsimModel, MonotoneAndBounded) {
  const SsimModel ssim(0.99, 2.0);
  double prev = 0.0;
  for (double r = 0.05; r <= 2.0; r *= 1.3) {
    const double v = ssim.SsimAt(r);
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 0.99);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(SsimModel, ValidatesConfig) {
  EXPECT_THROW(SsimModel(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(SsimModel(1.5, 2.0), std::invalid_argument);
  EXPECT_THROW(SsimModel(0.9, -1.0), std::invalid_argument);
}

TEST(VideoModel, ConstantBitrateSizes) {
  const VideoModel video(YoutubeHfr4kLadder(), {.segment_seconds = 2.0});
  EXPECT_DOUBLE_EQ(video.SegmentSizeMb(0, 0), 3.0);   // 1.5 Mb/s * 2 s
  EXPECT_DOUBLE_EQ(video.SegmentSizeMb(7, 5), 120.0);  // 60 * 2
  EXPECT_DOUBLE_EQ(video.NominalSegmentSizeMb(2), 15.0);
}

TEST(VideoModel, VbrDeterministicAndBounded) {
  VideoModelConfig config;
  config.segment_seconds = 2.0;
  config.vbr_amplitude = 0.2;
  config.vbr_seed = 7;
  const VideoModel a(YoutubeHfr4kLadder(), config);
  const VideoModel b(YoutubeHfr4kLadder(), config);
  bool any_differs_from_nominal = false;
  for (std::int64_t i = 0; i < 50; ++i) {
    const double size = a.SegmentSizeMb(i, 3);
    EXPECT_DOUBLE_EQ(size, b.SegmentSizeMb(i, 3));  // deterministic
    const double nominal = a.NominalSegmentSizeMb(3);
    EXPECT_GE(size, nominal * 0.8 - 1e-9);
    EXPECT_LE(size, nominal * 1.2 + 1e-9);
    if (std::abs(size - nominal) > 1e-9) any_differs_from_nominal = true;
  }
  EXPECT_TRUE(any_differs_from_nominal);
}

TEST(VideoModel, VbrNoiseSharedAcrossRungs) {
  VideoModelConfig config;
  config.vbr_amplitude = 0.3;
  const VideoModel video(YoutubeHfr4kLadder(), config);
  // Scene complexity moves all renditions of the same segment together.
  for (std::int64_t i = 0; i < 20; ++i) {
    const double ratio0 =
        video.SegmentSizeMb(i, 0) / video.NominalSegmentSizeMb(0);
    const double ratio5 =
        video.SegmentSizeMb(i, 5) / video.NominalSegmentSizeMb(5);
    EXPECT_NEAR(ratio0, ratio5, 1e-12);
  }
}

TEST(VideoModel, ValidatesConfig) {
  EXPECT_THROW(VideoModel(YoutubeHfr4kLadder(), {.segment_seconds = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(VideoModel(YoutubeHfr4kLadder(),
                          {.segment_seconds = 2.0, .vbr_amplitude = 0.95}),
               std::invalid_argument);
}

TEST(VideoModel, NegativeIndexThrows) {
  const VideoModel video(YoutubeHfr4kLadder(), {});
  EXPECT_THROW((void)video.SegmentSizeMb(-1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace soda::media
