#include <gtest/gtest.h>

#include <algorithm>

#include "media/video_model.hpp"
#include "net/generators.hpp"
#include "predict/fixed.hpp"
#include "sim/session.hpp"

namespace soda::sim {
namespace {

// Controller that always requests the given rung.
class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 8.0}),
                           {.segment_seconds = 2.0});
}

SimConfig WithAbandonment() {
  SimConfig config;
  config.rtt_s = 0.0;
  config.allow_abandonment = true;
  config.abandon_check_s = 1.0;
  config.abandon_stall_threshold_s = 0.5;
  return config;
}

TEST(Abandonment, AbortsDoomedDownloads) {
  // 1 Mb/s link, pinned to the 8 Mb/s rung: each 16 Mb segment would take
  // 16 s against a <= 20 s buffer that starts empty — every download after
  // the first projects a stall, so it is abandoned and refetched low.
  const auto trace = net::ConstantTrace(1.0, 120.0);
  const auto video = TestVideo();
  PinnedController controller(2);
  predict::FixedPredictor predictor(1.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, WithAbandonment());
  EXPECT_GT(log.AbandonedCount(), 10);
  EXPECT_GT(log.WastedMb(), 5.0);
  // Fetched segments are the lowest rung after abandonment.
  for (const auto& s : log.segments) {
    if (s.abandoned) {
      EXPECT_EQ(s.rung, 0);
      EXPECT_GT(s.wasted_mb, 0.0);
    }
  }
}

TEST(Abandonment, ReducesRebufferingVsPinnedHighRung) {
  const auto trace = net::ConstantTrace(1.0, 120.0);
  const auto video = TestVideo();
  predict::FixedPredictor predictor(1.0);

  PinnedController stubborn(2);
  SimConfig plain;
  plain.rtt_s = 0.0;
  const SessionLog no_abandon =
      RunSession(trace, stubborn, predictor, video, plain);

  PinnedController retry(2);
  const SessionLog with_abandon =
      RunSession(trace, retry, predictor, video, WithAbandonment());

  EXPECT_LT(with_abandon.total_rebuffer_s, no_abandon.total_rebuffer_s * 0.5);
}

TEST(Abandonment, NoEffectWhenDownloadsAreHealthy) {
  // Fast link: downloads finish well within the check window.
  const auto trace = net::ConstantTrace(50.0, 60.0);
  const auto video = TestVideo();
  PinnedController controller(2);
  predict::FixedPredictor predictor(50.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, WithAbandonment());
  EXPECT_EQ(log.AbandonedCount(), 0);
  EXPECT_DOUBLE_EQ(log.WastedMb(), 0.0);
}

TEST(Abandonment, LowestRungIsNeverAbandoned) {
  const auto trace = net::ConstantTrace(0.3, 60.0);  // painfully slow
  const auto video = TestVideo();
  PinnedController controller(0);
  predict::FixedPredictor predictor(0.3);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, WithAbandonment());
  EXPECT_EQ(log.AbandonedCount(), 0);
}

TEST(Abandonment, ReCheckCatchesMidFlightCollapse) {
  // Regression: abandonment used to be a single projection at the first
  // check. 40 Mb/s for the first 1.1 s, then 0.4 Mb/s: the third segment
  // (16 Mb) starts inside the fast phase, so at its first 1 s check the
  // observed throughput still projects a timely finish — only the later
  // re-checks see the collapse. Without re-checking, the download would
  // stall playback for ~10 s.
  const net::ThroughputTrace trace({{0.0, 40.0}, {1.1, 0.4}}, 200.0);
  const auto video = TestVideo();
  PinnedController controller(2);
  predict::FixedPredictor predictor(1.0);
  const SessionLog log =
      RunSession(trace, controller, predictor, video, WithAbandonment());
  ASSERT_GE(log.AbandonedCount(), 1);
  const auto first = std::find_if(log.segments.begin(), log.segments.end(),
                                  [](const SegmentRecord& s) {
                                    return s.abandoned;
                                  });
  ASSERT_NE(first, log.segments.end());
  EXPECT_EQ(first->index, 2);
  // Aborted at the fourth 1 s check: the wasted megabits are exactly what
  // the trace delivered by then, 0.3 s * 40 + 3.7 s * 0.4 = 13.48 Mb.
  EXPECT_NEAR(first->wasted_mb, 13.48, 1e-9);
  EXPECT_EQ(first->rung, 0);  // refetched at the lowest rung
}

TEST(Abandonment, OffByDefault) {
  const auto trace = net::ConstantTrace(1.0, 60.0);
  const auto video = TestVideo();
  PinnedController controller(2);
  predict::FixedPredictor predictor(1.0);
  SimConfig config;
  config.rtt_s = 0.0;
  const SessionLog log =
      RunSession(trace, controller, predictor, video, config);
  EXPECT_EQ(log.AbandonedCount(), 0);
}

}  // namespace
}  // namespace soda::sim
