#include <gtest/gtest.h>

#include "net/generators.hpp"
#include "predict/markov.hpp"
#include "predict/quantile.hpp"

namespace soda::predict {
namespace {

DownloadObservation Obs(double start, double duration, double mbps) {
  return {start, duration, mbps * duration};
}

// --- Markov predictor ---

TEST(Markov, ValidatesConfig) {
  EXPECT_THROW(MarkovPredictor({.states = 1}), std::invalid_argument);
  MarkovPredictorConfig bad;
  bad.min_mbps = 10.0;
  bad.max_mbps = 5.0;
  EXPECT_THROW((MarkovPredictor{bad}), std::invalid_argument);
}

TEST(Markov, StateMappingRoundTrips) {
  MarkovPredictor p;
  for (int s = 0; s < 16; ++s) {
    EXPECT_EQ(p.StateOf(p.StateCenterMbps(s)), s);
  }
  EXPECT_EQ(p.StateOf(0.0001), 0);
  EXPECT_EQ(p.StateOf(1e9), 15);
}

TEST(Markov, ColdStartDefault) {
  MarkovPredictor p;
  EXPECT_DOUBLE_EQ(p.PredictOne(0.0, 2.0), kDefaultColdStartMbps);
}

TEST(Markov, ConstantInputPredictsNearConstant) {
  MarkovPredictor p;
  for (int i = 0; i < 60; ++i) p.Observe(Obs(2.0 * i, 2.0, 8.0));
  const auto forecast = p.PredictHorizon(120.0, 5, 2.0);
  for (const double v : forecast) {
    // Within a state-grid quantum plus smoothing drift.
    EXPECT_NEAR(v, 8.0, 3.0);
  }
}

TEST(Markov, LearnsAlternation) {
  // Strictly alternating 2 <-> 20: the one-step forecast from state(2)
  // should be far above 2 (it learned the alternation), and the forecast
  // from state(20) far below 20.
  MarkovPredictor p;
  for (int i = 0; i < 100; ++i) {
    p.Observe(Obs(2.0 * i, 2.0, i % 2 == 0 ? 2.0 : 20.0));
  }
  // Last observation was 20 (i=99), so the next is predicted low.
  const double next = p.PredictOne(200.0, 2.0);
  EXPECT_LT(next, 10.0);
}

TEST(Markov, HorizonForecastIsPerInterval) {
  // After an alternating pattern, consecutive horizon entries differ
  // (non-flat forecast) — unlike the history predictors.
  MarkovPredictor p;
  for (int i = 0; i < 100; ++i) {
    p.Observe(Obs(2.0 * i, 2.0, i % 2 == 0 ? 2.0 : 20.0));
  }
  const auto forecast = p.PredictHorizon(200.0, 4, 2.0);
  EXPECT_GT(std::abs(forecast[1] - forecast[0]), 0.5);
}

TEST(Markov, ResetForgets) {
  MarkovPredictor p;
  for (int i = 0; i < 50; ++i) p.Observe(Obs(2.0 * i, 2.0, 40.0));
  p.Reset();
  EXPECT_DOUBLE_EQ(p.PredictOne(0.0, 2.0), kDefaultColdStartMbps);
}

TEST(Markov, ForecastConvergesTowardStationaryMean) {
  // With lots of i.i.d.-ish data the long-horizon forecast approaches the
  // stationary mean rather than sticking to the last state.
  MarkovPredictor p;
  Rng rng(4);
  double sum = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(2.0, 30.0);
    sum += v;
    p.Observe(Obs(2.0 * i, 2.0, v));
  }
  const auto forecast = p.PredictHorizon(1000.0, 40, 2.0);
  const double long_run = forecast.back();
  EXPECT_NEAR(long_run, sum / n, 8.0);
}

// --- Quantile predictor ---

TEST(Quantile, ValidatesConfig) {
  EXPECT_THROW(QuantilePredictor(0.0), std::invalid_argument);
  EXPECT_THROW(QuantilePredictor(100.0), std::invalid_argument);
  EXPECT_THROW(QuantilePredictor(25.0, 0), std::invalid_argument);
}

TEST(Quantile, LowPercentileIsConservative) {
  QuantilePredictor p25(25.0, 100);
  QuantilePredictor p75(75.0, 100);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Uniform(1.0, 10.0);
    p25.Observe(Obs(i, 1.0, v));
    p75.Observe(Obs(i, 1.0, v));
  }
  EXPECT_LT(p25.PredictOne(100.0, 1.0), p75.PredictOne(100.0, 1.0));
  EXPECT_NEAR(p25.PredictOne(100.0, 1.0), 3.25, 1.0);
}

TEST(Quantile, MedianOfKnownSamples) {
  QuantilePredictor p(50.0, 5);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) p.Observe(Obs(0, 1, v));
  EXPECT_DOUBLE_EQ(p.PredictOne(5.0, 1.0), 3.0);
}

TEST(Quantile, WindowEvicts) {
  QuantilePredictor p(50.0, 2);
  p.Observe(Obs(0, 1, 100.0));
  p.Observe(Obs(1, 1, 2.0));
  p.Observe(Obs(2, 1, 4.0));
  EXPECT_DOUBLE_EQ(p.PredictOne(3.0, 1.0), 3.0);  // median of {2, 4}
}

TEST(Quantile, NameAndReset) {
  QuantilePredictor p(25.0);
  EXPECT_EQ(p.Name(), "P25");
  p.Observe(Obs(0, 1, 50.0));
  p.Reset();
  EXPECT_DOUBLE_EQ(p.PredictOne(0.0, 1.0), kDefaultColdStartMbps);
}

}  // namespace
}  // namespace soda::predict
