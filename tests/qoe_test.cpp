#include "qoe/metrics.hpp"

#include <gtest/gtest.h>

#include "media/quality.hpp"
#include "qoe/eval.hpp"

#include "abr/throughput_rule.hpp"
#include "net/generators.hpp"
#include "predict/ema.hpp"

namespace soda::qoe {
namespace {

sim::SessionLog MakeLog() {
  sim::SessionLog log;
  // Bitrates chosen on the {1, 2, 4} ladder.
  log.segments.push_back({.rung = 0, .bitrate_mbps = 1.0});
  log.segments.push_back({.rung = 1, .bitrate_mbps = 2.0});
  log.segments.push_back({.rung = 1, .bitrate_mbps = 2.0});
  log.segments.push_back({.rung = 2, .bitrate_mbps = 4.0});
  log.segments.push_back({.rung = 2, .bitrate_mbps = 4.0});
  log.total_rebuffer_s = 5.0;
  log.session_s = 100.0;
  return log;
}

UtilityFn LogUtility() {
  return [u = media::NormalizedLogUtility(1.0, 4.0)](double mbps) {
    return u.At(mbps);
  };
}

TEST(Qoe, ComponentsComputedCorrectly) {
  const QoeMetrics m = ComputeQoe(MakeLog(), LogUtility());
  // Utilities: 0, 0.5, 0.5, 1, 1 -> mean 0.6.
  EXPECT_NEAR(m.mean_utility, 0.6, 1e-12);
  EXPECT_NEAR(m.rebuffer_ratio, 0.05, 1e-12);
  // 2 switches over 4 adjacent pairs.
  EXPECT_NEAR(m.switch_rate, 0.5, 1e-12);
  // QoE = 0.6 - 10*0.05 - 1*0.5.
  EXPECT_NEAR(m.qoe, 0.6 - 0.5 - 0.5, 1e-12);
  EXPECT_EQ(m.segment_count, 5);
}

TEST(Qoe, StartupTermOptIn) {
  sim::SessionLog log = MakeLog();
  log.startup_s = 10.0;  // 10% of the 100 s session
  const QoeMetrics without = ComputeQoe(log, LogUtility());
  EXPECT_NEAR(without.startup_ratio, 0.1, 1e-12);
  // Default delta = 0: startup does not change the score.
  EXPECT_NEAR(without.qoe, 0.6 - 0.5 - 0.5, 1e-12);
  // With delta = 2 the score drops by 2 * 0.1.
  const QoeMetrics with_startup =
      ComputeQoe(log, LogUtility(), {.delta = 2.0});
  EXPECT_NEAR(with_startup.qoe, without.qoe - 0.2, 1e-12);
}

TEST(Qoe, CustomWeights) {
  const QoeMetrics m = ComputeQoe(MakeLog(), LogUtility(), {.beta = 0.0, .gamma = 0.0});
  EXPECT_NEAR(m.qoe, 0.6, 1e-12);
}

TEST(Qoe, EmptySessionIsWorstCase) {
  sim::SessionLog log;
  log.session_s = 10.0;
  const QoeMetrics m = ComputeQoe(log, LogUtility());
  EXPECT_DOUBLE_EQ(m.rebuffer_ratio, 1.0);
  EXPECT_DOUBLE_EQ(m.qoe, -10.0);
}

TEST(Qoe, SingleSegmentHasNoSwitchRate) {
  sim::SessionLog log;
  log.segments.push_back({.rung = 1, .bitrate_mbps = 2.0});
  log.session_s = 10.0;
  const QoeMetrics m = ComputeQoe(log, LogUtility());
  EXPECT_DOUBLE_EQ(m.switch_rate, 0.0);
}

TEST(Qoe, MissingUtilityThrows) {
  EXPECT_THROW((void)ComputeQoe(MakeLog(), UtilityFn{}), std::invalid_argument);
}

TEST(Qoe, AggregateAccumulates) {
  QoeAggregate agg;
  const QoeMetrics m = ComputeQoe(MakeLog(), LogUtility());
  agg.Add(m);
  agg.Add(m);
  EXPECT_EQ(agg.SessionCount(), 2u);
  EXPECT_NEAR(agg.qoe.Mean(), m.qoe, 1e-12);
  EXPECT_NEAR(agg.utility.Mean(), 0.6, 1e-12);
}

TEST(Eval, RunsControllerOverSessions) {
  Rng rng(3);
  net::RandomWalkConfig walk;
  walk.mean_mbps = 5.0;
  walk.duration_s = 120.0;
  std::vector<net::ThroughputTrace> sessions;
  for (int i = 0; i < 4; ++i) sessions.push_back(net::RandomWalkTrace(walk, rng));

  const media::VideoModel video(media::BitrateLadder({1.0, 2.0, 4.0}),
                                {.segment_seconds = 2.0});
  EvalConfig config;
  config.utility = LogUtility();
  config.sim.rtt_s = 0.0;

  const EvalResult result = EvaluateController(
      sessions, [] { return std::make_unique<abr::ThroughputRuleController>(); },
      [](const net::ThroughputTrace&) {
        return std::make_unique<predict::EmaPredictor>();
      },
      video, config);
  EXPECT_EQ(result.controller_name, "Throughput");
  EXPECT_EQ(result.aggregate.SessionCount(), 4u);
  EXPECT_EQ(result.per_session.size(), 4u);
}

TEST(Eval, SubsetIndicesRespected) {
  Rng rng(3);
  net::RandomWalkConfig walk;
  walk.duration_s = 60.0;
  std::vector<net::ThroughputTrace> sessions;
  for (int i = 0; i < 5; ++i) sessions.push_back(net::RandomWalkTrace(walk, rng));

  const media::VideoModel video(media::BitrateLadder({1.0, 2.0, 4.0}),
                                {.segment_seconds = 2.0});
  EvalConfig config;
  config.utility = LogUtility();

  const EvalResult result = EvaluateControllerOn(
      sessions, {0, 2},
      [] { return std::make_unique<abr::ThroughputRuleController>(); },
      [](const net::ThroughputTrace&) {
        return std::make_unique<predict::EmaPredictor>();
      },
      video, config);
  EXPECT_EQ(result.aggregate.SessionCount(), 2u);
}

TEST(Eval, InvalidIndexThrows) {
  const std::vector<net::ThroughputTrace> sessions = {
      net::ConstantTrace(5.0, 60.0)};
  const media::VideoModel video(media::BitrateLadder({1.0, 2.0, 4.0}),
                                {.segment_seconds = 2.0});
  EvalConfig config;
  config.utility = LogUtility();
  EXPECT_THROW(
      EvaluateControllerOn(
          sessions, {7},
          [] { return std::make_unique<abr::ThroughputRuleController>(); },
          [](const net::ThroughputTrace&) {
            return std::make_unique<predict::EmaPredictor>();
          },
          video, config),
      std::invalid_argument);
}

}  // namespace
}  // namespace soda::qoe
