#include "net/generators.hpp"

#include <gtest/gtest.h>

#include "net/trace_stats.hpp"
#include "util/stats.hpp"

namespace soda::net {
namespace {

TEST(Generators, ConstantTrace) {
  const ThroughputTrace t = ConstantTrace(7.5, 100.0);
  EXPECT_DOUBLE_EQ(t.MeanMbps(), 7.5);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(50.0), 7.5);
  EXPECT_DOUBLE_EQ(t.DurationS(), 100.0);
}

TEST(Generators, StepTrace) {
  const ThroughputTrace t = StepTrace({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(5.0), 1.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(15.0), 2.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(25.0), 3.0);
  EXPECT_THROW(StepTrace({}, 1.0), std::invalid_argument);
}

TEST(Generators, SquareWave) {
  const ThroughputTrace t = SquareWaveTrace(1.0, 9.0, 10.0, 40.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(2.0), 9.0);   // first half period high
  EXPECT_DOUBLE_EQ(t.ThroughputAt(7.0), 1.0);   // second half low
  EXPECT_DOUBLE_EQ(t.ThroughputAt(12.0), 9.0);  // repeats
  EXPECT_NEAR(t.MeanMbps(), 5.0, 1e-9);
}

TEST(Generators, RandomWalkHitsTargetMoments) {
  RandomWalkConfig config;
  config.mean_mbps = 20.0;
  config.stationary_rel_std = 0.5;
  config.reversion_rate = 0.3;  // fast mixing for a tight estimate
  config.duration_s = 20000.0;
  Rng rng(1234);
  const ThroughputTrace t = RandomWalkTrace(config, rng);
  const TraceStats stats = ComputeTraceStats(t, 1.0);
  EXPECT_NEAR(stats.mean_mbps, 20.0, 2.0);
  EXPECT_NEAR(stats.rel_std, 0.5, 0.08);
}

TEST(Generators, RandomWalkRespectsFloor) {
  RandomWalkConfig config;
  config.mean_mbps = 0.2;
  config.stationary_rel_std = 2.0;
  config.floor_mbps = 0.05;
  config.duration_s = 2000.0;
  Rng rng(5);
  const ThroughputTrace t = RandomWalkTrace(config, rng);
  for (const auto& s : t.Samples()) {
    EXPECT_GE(s.mbps, 0.05);
  }
}

TEST(Generators, RandomWalkDeterministicGivenSeed) {
  RandomWalkConfig config;
  Rng rng1(77);
  Rng rng2(77);
  const ThroughputTrace a = RandomWalkTrace(config, rng1);
  const ThroughputTrace b = RandomWalkTrace(config, rng2);
  ASSERT_EQ(a.Samples().size(), b.Samples().size());
  for (std::size_t i = 0; i < a.Samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.Samples()[i].mbps, b.Samples()[i].mbps);
  }
}

TEST(Generators, RandomWalkValidation) {
  Rng rng(1);
  RandomWalkConfig bad;
  bad.mean_mbps = -1.0;
  EXPECT_THROW(RandomWalkTrace(bad, rng), std::invalid_argument);
}

TEST(Generators, FadeMultipliersDwellFractions) {
  FadeConfig config;
  config.mean_good_s = 30.0;
  config.mean_fade_s = 10.0;
  config.fade_depth = 0.2;
  Rng rng(9);
  const auto m = FadeMultipliers(config, 1.0, 200000, rng);
  double fade_fraction = 0.0;
  for (const double v : m) {
    EXPECT_TRUE(v == 1.0 || v == 0.2);
    if (v == 0.2) fade_fraction += 1.0;
  }
  fade_fraction /= static_cast<double>(m.size());
  EXPECT_NEAR(fade_fraction, 0.25, 0.02);  // 10 / (30 + 10)
}

TEST(Generators, FadeValidation) {
  Rng rng(1);
  FadeConfig bad;
  bad.fade_depth = 0.0;
  EXPECT_THROW(FadeMultipliers(bad, 1.0, 10, rng), std::invalid_argument);
}

TEST(Generators, PathologyTraceShape) {
  const ThroughputTrace t = RobustMpcPathologyTrace(40.0, 10.0, 60.0, 200.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(30.0), 40.0);
  EXPECT_DOUBLE_EQ(t.ThroughputAt(100.0), 10.0);
  EXPECT_DOUBLE_EQ(t.DurationS(), 200.0);
  EXPECT_THROW(RobustMpcPathologyTrace(10.0, 40.0, 60.0, 200.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace soda::net
