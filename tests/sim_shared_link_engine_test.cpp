// Differential golden: the incremental shared-link engine must reproduce
// the reference (original full-scan) loop bitwise — every SessionLog field,
// every SegmentRecord, every trace event, and the aggregates — for mixed
// controller rosters and player counts. Exact == on every double.
#include "sim/shared_link.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cached_controller.hpp"
#include "core/soda_controller.hpp"
#include "media/video_model.hpp"
#include "obs/trace.hpp"
#include "predict/ema.hpp"
#include "predict/fixed.hpp"

namespace soda::sim {
namespace {

class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 4.0}),
                           {.segment_seconds = 2.0});
}

// Mixed roster: planner-driven players (SODA exact and cached) coupled
// with pinned players that idle (freeing capacity) or overload the link.
std::vector<SharedLinkPlayer> MakeRoster(
    std::size_t n, std::vector<obs::EventTracer>* tracers) {
  std::vector<SharedLinkPlayer> players;
  players.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SharedLinkPlayer player;
    switch (i % 4) {
      case 0:
        player.controller = std::make_unique<core::SodaController>();
        player.predictor = std::make_unique<predict::EmaPredictor>();
        break;
      case 1:
        player.controller = std::make_unique<PinnedController>(
            static_cast<media::Rung>(i % 3));
        player.predictor = std::make_unique<predict::FixedPredictor>(4.0);
        break;
      case 2:
        player.controller = std::make_unique<core::CachedDecisionController>();
        player.predictor = std::make_unique<predict::EmaPredictor>();
        break;
      default:
        player.controller = std::make_unique<PinnedController>(0);
        player.predictor = std::make_unique<predict::FixedPredictor>(1.0);
        break;
    }
    if (tracers != nullptr) player.tracer = &(*tracers)[i];
    players.push_back(std::move(player));
  }
  return players;
}

void ExpectLogsBitwiseEqual(const SessionLog& a, const SessionLog& b) {
  EXPECT_EQ(a.startup_s, b.startup_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.total_wait_s, b.total_wait_s);
  EXPECT_EQ(a.session_s, b.session_s);
  EXPECT_EQ(a.starved, b.starved);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t s = 0; s < a.segments.size(); ++s) {
    const SegmentRecord& x = a.segments[s];
    const SegmentRecord& y = b.segments[s];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.rung, y.rung);
    EXPECT_EQ(x.bitrate_mbps, y.bitrate_mbps);
    EXPECT_EQ(x.size_mb, y.size_mb);
    EXPECT_EQ(x.request_s, y.request_s);
    EXPECT_EQ(x.download_s, y.download_s);
    EXPECT_EQ(x.wait_s, y.wait_s);
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.wasted_mb, y.wasted_mb);
    EXPECT_EQ(x.attempts, y.attempts);
  }
}

void ExpectTracesBitwiseEqual(const std::vector<obs::TraceEvent>& a,
                              const std::vector<obs::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].t_s, b[e].t_s);
    EXPECT_EQ(a[e].segment, b[e].segment);
    EXPECT_EQ(a[e].rung, b[e].rung);
    EXPECT_EQ(a[e].prev_rung, b[e].prev_rung);
    EXPECT_EQ(a[e].buffer_s, b[e].buffer_s);
    EXPECT_EQ(a[e].value_mb, b[e].value_mb);
    EXPECT_EQ(a[e].duration_s, b[e].duration_s);
    EXPECT_EQ(a[e].attempt, b[e].attempt);
    EXPECT_EQ(a[e].sequences_evaluated, b[e].sequences_evaluated);
    EXPECT_EQ(a[e].nodes_expanded, b[e].nodes_expanded);
    EXPECT_EQ(a[e].nodes_pruned, b[e].nodes_pruned);
    EXPECT_EQ(a[e].warm_start_hit, b[e].warm_start_hit);
    EXPECT_EQ(a[e].from_table, b[e].from_table);
    EXPECT_EQ(a[e].solver_fallback, b[e].solver_fallback);
  }
}

void RunDifferential(std::size_t n, double capacity_per_player_mbps) {
  SCOPED_TRACE("n=" + std::to_string(n));
  SharedLinkConfig config;
  config.link_capacity_mbps =
      capacity_per_player_mbps * static_cast<double>(n);
  config.session_s = 240.0;

  std::vector<obs::EventTracer> ref_tracers(n, obs::EventTracer(true));
  config.engine = SharedLinkEngine::kReference;
  const SharedLinkResult reference =
      RunSharedLink(MakeRoster(n, &ref_tracers), TestVideo(), config);

  std::vector<obs::EventTracer> inc_tracers(n, obs::EventTracer(true));
  config.engine = SharedLinkEngine::kIncremental;
  const SharedLinkResult incremental =
      RunSharedLink(MakeRoster(n, &inc_tracers), TestVideo(), config);

  ASSERT_EQ(reference.logs.size(), incremental.logs.size());
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("player " + std::to_string(i));
    ExpectLogsBitwiseEqual(reference.logs[i], incremental.logs[i]);
    ExpectTracesBitwiseEqual(ref_tracers[i].Events(),
                             inc_tracers[i].Events());
  }
  EXPECT_EQ(reference.bitrate_fairness, incremental.bitrate_fairness);
  EXPECT_EQ(reference.mean_switch_rate, incremental.mean_switch_rate);
  EXPECT_EQ(reference.mean_rebuffer_s, incremental.mean_rebuffer_s);
}

TEST(SharedLinkEngines, BitwiseIdenticalSinglePlayer) {
  RunDifferential(1, 3.0);
}

TEST(SharedLinkEngines, BitwiseIdenticalThreePlayers) {
  RunDifferential(3, 2.5);
}

TEST(SharedLinkEngines, BitwiseIdenticalEightPlayers) {
  RunDifferential(8, 2.0);
}

TEST(SharedLinkEngines, BitwiseIdenticalUnderContention) {
  // Undersized link: stalls and near-simultaneous completions stress the
  // 1e-9 epsilon paths (wait releases a hair after completions, dt floors).
  RunDifferential(6, 0.9);
}

TEST(SharedLinkEngines, BitwiseIdenticalManyPlayers) {
  RunDifferential(32, 1.7);
}

}  // namespace
}  // namespace soda::sim
