// Differential golden: the incremental shared-link engine must reproduce
// the reference (original full-scan) loop bitwise — every SessionLog field,
// every SegmentRecord, every trace event, and the aggregates — for mixed
// controller rosters and player counts. Exact == on every double.
#include "sim/shared_link.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cached_controller.hpp"
#include "core/soda_controller.hpp"
#include "fault/impairment.hpp"
#include "media/video_model.hpp"
#include "obs/trace.hpp"
#include "predict/ema.hpp"
#include "predict/fixed.hpp"

namespace soda::sim {
namespace {

class PinnedController final : public abr::Controller {
 public:
  explicit PinnedController(media::Rung rung) : rung_(rung) {}
  media::Rung ChooseRung(const abr::Context& context) override {
    return std::min(rung_, context.Ladder().HighestRung());
  }
  std::string Name() const override { return "Pinned"; }

 private:
  media::Rung rung_;
};

media::VideoModel TestVideo() {
  return media::VideoModel(media::BitrateLadder({1.0, 2.0, 4.0}),
                           {.segment_seconds = 2.0});
}

// Mixed roster: planner-driven players (SODA exact and cached) coupled
// with pinned players that idle (freeing capacity) or overload the link.
std::vector<SharedLinkPlayer> MakeRoster(
    std::size_t n, std::vector<obs::EventTracer>* tracers) {
  std::vector<SharedLinkPlayer> players;
  players.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SharedLinkPlayer player;
    switch (i % 4) {
      case 0:
        player.controller = std::make_unique<core::SodaController>();
        player.predictor = std::make_unique<predict::EmaPredictor>();
        break;
      case 1:
        player.controller = std::make_unique<PinnedController>(
            static_cast<media::Rung>(i % 3));
        player.predictor = std::make_unique<predict::FixedPredictor>(4.0);
        break;
      case 2:
        player.controller = std::make_unique<core::CachedDecisionController>();
        player.predictor = std::make_unique<predict::EmaPredictor>();
        break;
      default:
        player.controller = std::make_unique<PinnedController>(0);
        player.predictor = std::make_unique<predict::FixedPredictor>(1.0);
        break;
    }
    if (tracers != nullptr) player.tracer = &(*tracers)[i];
    players.push_back(std::move(player));
  }
  return players;
}

void ExpectLogsBitwiseEqual(const SessionLog& a, const SessionLog& b) {
  EXPECT_EQ(a.startup_s, b.startup_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.total_wait_s, b.total_wait_s);
  EXPECT_EQ(a.session_s, b.session_s);
  EXPECT_EQ(a.starved, b.starved);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t s = 0; s < a.segments.size(); ++s) {
    const SegmentRecord& x = a.segments[s];
    const SegmentRecord& y = b.segments[s];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.rung, y.rung);
    EXPECT_EQ(x.bitrate_mbps, y.bitrate_mbps);
    EXPECT_EQ(x.size_mb, y.size_mb);
    EXPECT_EQ(x.request_s, y.request_s);
    EXPECT_EQ(x.download_s, y.download_s);
    EXPECT_EQ(x.wait_s, y.wait_s);
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
    EXPECT_EQ(x.buffer_after_s, y.buffer_after_s);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.wasted_mb, y.wasted_mb);
    EXPECT_EQ(x.attempts, y.attempts);
  }
}

void ExpectTracesBitwiseEqual(const std::vector<obs::TraceEvent>& a,
                              const std::vector<obs::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE("event " + std::to_string(e));
    EXPECT_EQ(a[e].type, b[e].type);
    EXPECT_EQ(a[e].t_s, b[e].t_s);
    EXPECT_EQ(a[e].segment, b[e].segment);
    EXPECT_EQ(a[e].rung, b[e].rung);
    EXPECT_EQ(a[e].prev_rung, b[e].prev_rung);
    EXPECT_EQ(a[e].buffer_s, b[e].buffer_s);
    EXPECT_EQ(a[e].value_mb, b[e].value_mb);
    EXPECT_EQ(a[e].duration_s, b[e].duration_s);
    EXPECT_EQ(a[e].attempt, b[e].attempt);
    EXPECT_EQ(a[e].sequences_evaluated, b[e].sequences_evaluated);
    EXPECT_EQ(a[e].nodes_expanded, b[e].nodes_expanded);
    EXPECT_EQ(a[e].nodes_pruned, b[e].nodes_pruned);
    EXPECT_EQ(a[e].warm_start_hit, b[e].warm_start_hit);
    EXPECT_EQ(a[e].from_table, b[e].from_table);
    EXPECT_EQ(a[e].solver_fallback, b[e].solver_fallback);
  }
}

void RunDifferential(std::size_t n, double capacity_per_player_mbps) {
  SCOPED_TRACE("n=" + std::to_string(n));
  SharedLinkConfig config;
  config.link_capacity_mbps =
      capacity_per_player_mbps * static_cast<double>(n);
  config.session_s = 240.0;

  std::vector<obs::EventTracer> ref_tracers(n, obs::EventTracer(true));
  config.engine = SharedLinkEngine::kReference;
  const SharedLinkResult reference =
      RunSharedLink(MakeRoster(n, &ref_tracers), TestVideo(), config);

  std::vector<obs::EventTracer> inc_tracers(n, obs::EventTracer(true));
  config.engine = SharedLinkEngine::kIncremental;
  const SharedLinkResult incremental =
      RunSharedLink(MakeRoster(n, &inc_tracers), TestVideo(), config);

  ASSERT_EQ(reference.logs.size(), incremental.logs.size());
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("player " + std::to_string(i));
    ExpectLogsBitwiseEqual(reference.logs[i], incremental.logs[i]);
    ExpectTracesBitwiseEqual(ref_tracers[i].Events(),
                             inc_tracers[i].Events());
  }
  EXPECT_EQ(reference.bitrate_fairness, incremental.bitrate_fairness);
  EXPECT_EQ(reference.mean_switch_rate, incremental.mean_switch_rate);
  EXPECT_EQ(reference.mean_rebuffer_s, incremental.mean_rebuffer_s);
}

TEST(SharedLinkEngines, BitwiseIdenticalSinglePlayer) {
  RunDifferential(1, 3.0);
}

TEST(SharedLinkEngines, BitwiseIdenticalThreePlayers) {
  RunDifferential(3, 2.5);
}

TEST(SharedLinkEngines, BitwiseIdenticalEightPlayers) {
  RunDifferential(8, 2.0);
}

TEST(SharedLinkEngines, BitwiseIdenticalUnderContention) {
  // Undersized link: stalls and near-simultaneous completions stress the
  // 1e-9 epsilon paths (wait releases a hair after completions, dt floors).
  RunDifferential(6, 0.9);
}

TEST(SharedLinkEngines, BitwiseIdenticalManyPlayers) {
  RunDifferential(32, 1.7);
}

// ---------------------------------------------------------------------------
// Adversarial schedules: equal-key storms, joins/leaves, dispatch boundary,
// fault-impaired capacity. Each scenario runs the reference oracle once and
// the incremental engine across forced dispatch modes, expecting bitwise
// equality everywhere.

struct EngineRun {
  SharedLinkResult result;
  std::vector<std::vector<obs::TraceEvent>> traces;
};

template <typename RosterFn>
EngineRun RunWith(const RosterFn& make_roster, SharedLinkConfig config,
                  SharedLinkEngine engine, std::size_t scan_max) {
  config.engine = engine;
  config.hybrid_scan_max_players = scan_max;
  std::vector<SharedLinkPlayer> players = make_roster();
  std::vector<obs::EventTracer> tracers(players.size(),
                                        obs::EventTracer(true));
  for (std::size_t i = 0; i < players.size(); ++i) {
    players[i].tracer = &tracers[i];
  }
  EngineRun run;
  run.result = RunSharedLink(std::move(players), TestVideo(), config);
  run.traces.reserve(tracers.size());
  for (const obs::EventTracer& tracer : tracers) {
    run.traces.push_back(tracer.Events());
  }
  return run;
}

void ExpectRunsBitwiseEqual(const EngineRun& a, const EngineRun& b) {
  ASSERT_EQ(a.result.logs.size(), b.result.logs.size());
  for (std::size_t i = 0; i < a.result.logs.size(); ++i) {
    SCOPED_TRACE("player " + std::to_string(i));
    ExpectLogsBitwiseEqual(a.result.logs[i], b.result.logs[i]);
    ExpectTracesBitwiseEqual(a.traces[i], b.traces[i]);
  }
  EXPECT_EQ(a.result.bitrate_fairness, b.result.bitrate_fairness);
  EXPECT_EQ(a.result.mean_switch_rate, b.result.mean_switch_rate);
  EXPECT_EQ(a.result.mean_rebuffer_s, b.result.mean_rebuffer_s);
  EXPECT_EQ(a.result.events, b.result.events);
}

// Runs the reference oracle plus the incremental engine at every forced
// dispatch point in `scan_maxes`, expecting all runs bitwise equal.
template <typename RosterFn>
void ExpectAllDispatchesMatchReference(
    const RosterFn& make_roster, const SharedLinkConfig& config,
    const std::vector<std::size_t>& scan_maxes) {
  const EngineRun reference = RunWith(make_roster, config,
                                      SharedLinkEngine::kReference, 0);
  for (const std::size_t scan_max : scan_maxes) {
    SCOPED_TRACE("hybrid_scan_max_players=" + std::to_string(scan_max));
    const EngineRun incremental = RunWith(
        make_roster, config, SharedLinkEngine::kIncremental, scan_max);
    ExpectRunsBitwiseEqual(reference, incremental);
  }
}

constexpr std::size_t kForceHeaps = 0;
constexpr std::size_t kForceScan = static_cast<std::size_t>(-1);

TEST(SharedLinkEngines, EqualKeyStormLockstepRoster) {
  // 64 identical players joining together: every completion and every
  // wait-expiry arrives as one 64-wide equal-key batch, the adversarial
  // case for the heaps' crown batch-pop (and, with generous capacity,
  // whole-population park/release storms on the wait heap).
  const auto make_roster = [] {
    std::vector<SharedLinkPlayer> players(64);
    for (SharedLinkPlayer& player : players) {
      player.controller = std::make_unique<PinnedController>(1);
      player.predictor = std::make_unique<predict::FixedPredictor>(2.0);
    }
    return players;
  };
  SharedLinkConfig config;
  config.session_s = 240.0;
  config.link_capacity_mbps = 2.0 * 64.0;  // oversized: wait storms too
  ExpectAllDispatchesMatchReference(make_roster, config,
                                    {kForceHeaps, kForceScan, 32});
}

TEST(SharedLinkEngines, MassJoinLeaveSchedules) {
  // Cohort joins (16 players every 20 s) and a mid-session mass leave: the
  // live set grows 16 -> 64 and collapses to 24, crossing any crossover in
  // both directions and exercising heap rebuilds plus mid-download
  // Remove() for leavers.
  const auto make_roster = [] {
    std::vector<SharedLinkPlayer> players(64);
    for (std::size_t i = 0; i < players.size(); ++i) {
      players[i].controller = std::make_unique<PinnedController>(
          static_cast<media::Rung>(i % 3));
      players[i].predictor = std::make_unique<predict::FixedPredictor>(1.5);
      players[i].join_s = 20.0 * static_cast<double>(i / 16);
      if (i % 8 == 5) players[i].leave_s = 130.0;  // mass leave cohort
      if (i % 16 == 7) players[i].leave_s = 90.0 + static_cast<double>(i);
    }
    return players;
  };
  SharedLinkConfig config;
  config.session_s = 240.0;
  config.link_capacity_mbps = 1.1 * 64.0;
  ExpectAllDispatchesMatchReference(make_roster, config,
                                    {kForceHeaps, kForceScan, 24, 40});
}

TEST(SharedLinkEngines, HybridDispatchBoundary) {
  // Pin the crossover exactly at the live count (n), one below (n-1), and
  // one above (n+1) for a roster whose live count crosses those values
  // mid-run (24 players at start, 12 more join at t=60): every placement
  // of the boundary must leave the outputs bitwise unchanged, including
  // the rounds where the engine switches scan -> heaps on the join wave.
  constexpr std::size_t kStart = 24;
  constexpr std::size_t kTotal = 36;
  const auto make_roster = [] {
    std::vector<SharedLinkPlayer> players(kTotal);
    for (std::size_t i = 0; i < players.size(); ++i) {
      players[i].controller = std::make_unique<PinnedController>(
          static_cast<media::Rung>(i % 3));
      players[i].predictor = std::make_unique<predict::FixedPredictor>(1.5);
      if (i >= kStart) players[i].join_s = 60.0;
    }
    return players;
  };
  SharedLinkConfig config;
  config.session_s = 180.0;
  config.link_capacity_mbps = 1.2 * static_cast<double>(kTotal);
  ExpectAllDispatchesMatchReference(
      make_roster, config,
      {kStart - 1, kStart, kStart + 1, kTotal - 1, kTotal, kTotal + 1,
       kForceHeaps, kForceScan});
}

TEST(SharedLinkEngines, FaultImpairedCapacityDifferential) {
  // PR-2 style impairment: a mid-run outage to zero, a recovery at half
  // capacity, and a CDN switch blackout. Capacity breakpoints interleave
  // with joins/leaves; during the outage the completion key set is empty
  // while waits and scheduled events still fire.
  fault::ImpairmentPlan plan;
  plan.outages.push_back({.start_s = 60.0, .duration_s = 5.0,
                          .period_s = 0.0, .floor_mbps = 0.0});
  plan.scales.push_back({.factor = 0.5, .from_s = 100.0, .to_s = 150.0});
  plan.switches.push_back({.at_s = 170.0, .blackout_s = 2.0, .factor = 0.8});

  const auto make_roster = [] {
    std::vector<SharedLinkPlayer> players(40);
    for (std::size_t i = 0; i < players.size(); ++i) {
      players[i].controller = std::make_unique<PinnedController>(
          static_cast<media::Rung>(i % 3));
      players[i].predictor = std::make_unique<predict::FixedPredictor>(1.5);
      players[i].join_s = 1.5 * static_cast<double>(i % 8);
      if (i % 10 == 9) players[i].leave_s = 140.0;
    }
    return players;
  };
  SharedLinkConfig config;
  config.session_s = 240.0;
  config.link_capacity_mbps = 1.4 * 40.0;
  config.impairment = &plan;
  ExpectAllDispatchesMatchReference(make_roster, config,
                                    {kForceHeaps, kForceScan, 20});
}

}  // namespace
}  // namespace soda::sim
