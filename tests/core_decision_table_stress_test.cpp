// Concurrent adoption of shared decision tables: many threads racing on
// the process-wide caches must build each geometry exactly once and all
// adopt the same immutable table. Run under -DSODA_SANITIZE=thread (or
// address) to make the locking claims machine-checked.
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cached_controller.hpp"
#include "core/quantized_table.hpp"
#include "media/bitrate_ladder.hpp"
#include "test_helpers.hpp"

namespace soda::core {
namespace {

constexpr int kThreads = 8;

TEST(DecisionTableStress, SameKeyBuildsOnceAcrossThreads) {
  ClearDecisionTableCacheForTesting();
  std::vector<DecisionTablePtr> adopted(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread drives its own controller instance at the same
      // geometry; the shared cache must hand all of them one table.
      CachedDecisionController controller;
      soda::testing::ContextFixture fx(media::YoutubeHfr4kLadder());
      fx.SetThroughput(10.0);
      (void)controller.ChooseRung(fx.Make(10.0, 2));
      adopted[t] = controller.Table();
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(adopted[t].get(), adopted[0].get()) << "thread " << t;
  }
  EXPECT_EQ(DecisionTableCacheSize(), 1u);
}

TEST(DecisionTableStress, RawCacheApiPinsBuildOncePerKey) {
  ClearDecisionTableCacheForTesting();
  ClearQuantizedTableCacheForTesting();

  // One real build per key is required; this test hammers the cache with
  // raw keys and trivial builders so the build-once pin is exact (the
  // builder count is the assertion, not a timing side effect).
  CachedDecisionController reference;
  soda::testing::ContextFixture fx(media::YoutubeHfr4kLadder());
  fx.SetThroughput(10.0);
  (void)reference.ChooseRung(fx.Make(10.0, 2));
  const DecisionTable table = *reference.Table();
  ClearDecisionTableCacheForTesting();
  ClearQuantizedTableCacheForTesting();

  constexpr int kKeys = 6;
  constexpr int kItersPerThread = 200;
  std::atomic<int> exact_builds{0};
  std::atomic<int> quant_builds{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // Interleave same-key and different-key adoptions across threads.
        const std::string key =
            "stress-key-" + std::to_string((i + t) % kKeys);
        const DecisionTablePtr exact = SharedDecisionTable(key, [&] {
          exact_builds.fetch_add(1, std::memory_order_relaxed);
          return table;
        });
        ASSERT_NE(exact, nullptr);
        const QuantizedTablePtr quantized = SharedQuantizedTable(key, [&] {
          quant_builds.fetch_add(1, std::memory_order_relaxed);
          return QuantizeDecisionTable(*exact);
        });
        ASSERT_NE(quantized, nullptr);
        ASSERT_EQ(CountCellMismatches(*quantized, *exact), 0u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Build-once-per-key, exactly: kThreads x kIters adoptions, kKeys builds.
  EXPECT_EQ(exact_builds.load(), kKeys);
  EXPECT_EQ(quant_builds.load(), kKeys);
  EXPECT_EQ(DecisionTableCacheSize(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(QuantizedTableCacheSize(), static_cast<std::size_t>(kKeys));

  // And every later adoption of a key returns the pinned pointer.
  std::set<const DecisionTable*> distinct;
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "stress-key-" + std::to_string(k);
    distinct.insert(SharedDecisionTable(key, [&] { return table; }).get());
  }
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kKeys));
  EXPECT_EQ(exact_builds.load(), kKeys);  // no rebuilds
}

}  // namespace
}  // namespace soda::core
