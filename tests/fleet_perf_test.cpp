// Fleet-scale regression pin (run via `ctest -L perf`, see EXPERIMENTS.md).
//
// The correctness half — bitwise thread invariance at >= 100k concurrent
// sessions — runs in every build type, including sanitizers. The timing
// assertion (steady-state decision throughput) is compiled in only for
// Release (SODA_PERF_ASSERT) so debug builds don't flake, and gates a
// deliberately conservative floor: the measured single-core rate is ~6M
// decisions/sec, the pin is 500k/sec.
#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "fleet/session_arena.hpp"

namespace soda::fleet {
namespace {

FleetConfig ScaleConfig() {
  FleetConfig config;
  // ~250k users over a 10-minute horizon holds >= 100k concurrent sessions
  // at the default engagement (quick-run measurement: peak ~ 0.4 * users
  // at a 600 s horizon).
  config.users = 260000;
  config.shards = 128;
  config.arrival.horizon_s = 600.0;
  return config;
}

TEST(FleetPerf, HoldsHundredThousandSessionsBitIdenticalAcrossThreads) {
  const FleetConfig config = ScaleConfig();

  const auto start = std::chrono::steady_clock::now();
  const FleetSummary t1 = RunFleet(config, 1);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_GE(t1.peak_live, 100000u) << "fleet failed to hold 100k sessions";
  EXPECT_GT(t1.decisions, 10u * 1000u * 1000u);
  EXPECT_EQ(t1.sessions_ended, t1.sessions_completed + t1.sessions_abandoned);

  const FleetSummary t4 = RunFleet(config, 4);
  EXPECT_EQ(t1, t4) << "fleet summary differs between 1 and 4 threads";

#ifdef SODA_PERF_ASSERT
  const double decisions_per_sec =
      static_cast<double>(t1.decisions) / wall_s;
  EXPECT_GE(decisions_per_sec, 500000.0)
      << "steady-state throughput regressed: " << decisions_per_sec
      << " decisions/sec over " << wall_s << " s";
#else
  (void)wall_s;
#endif
}

TEST(FleetPerf, ArenaStaysAllocationFreeAtSteadyState) {
  // Memory for the whole 100k+ population must stay in the SoA arenas:
  // ~170 bytes of hot state per slot, so even the peak population costs a
  // couple hundred MB at 1M sessions and tens of MB here.
  const FleetConfig config = ScaleConfig();
  const FleetSummary s = RunFleet(config, 2);
  EXPECT_GT(s.arena_bytes, 0u);
  // < 400 bytes per peak-live session across every array incl. slack from
  // vector growth: the SoA layout, not per-session heap objects.
  EXPECT_LT(s.arena_bytes, s.peak_live * 400u);
  // The shard-invariant footprint is exactly peak live x the per-session
  // column width, and the capacity diagnostic can only sit above it
  // (vector slack + free-list) scaled by the shard count's fragmentation.
  EXPECT_EQ(s.live_state_bytes, s.peak_live * SessionArena::kBytesPerSession);
}

}  // namespace
}  // namespace soda::fleet
