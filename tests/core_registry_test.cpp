#include "core/registry.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace soda::core {
namespace {

class ControllerRegistryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ControllerRegistryTest, CreatesWorkingController) {
  const abr::ControllerPtr controller = MakeController(GetParam());
  ASSERT_NE(controller, nullptr);
  EXPECT_FALSE(controller->Name().empty());

  soda::testing::ContextFixture fx(media::YoutubeHfr4kLadder());
  fx.SetThroughput(10.0);
  const media::Rung rung = controller->ChooseRung(fx.Make(10.0, 2));
  EXPECT_TRUE(media::YoutubeHfr4kLadder().IsValidRung(rung));
}

INSTANTIATE_TEST_SUITE_P(AllControllers, ControllerRegistryTest,
                         ::testing::ValuesIn(ControllerNames()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ControllerRegistry, CaseInsensitive) {
  EXPECT_EQ(MakeController("SODA")->Name(), "SODA");
  EXPECT_EQ(MakeController("Dynamic")->Name(), "Dynamic");
}

TEST(ControllerRegistry, UnknownNameThrowsWithSuggestions) {
  try {
    (void)MakeController("nope");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("soda"), std::string::npos);
  }
}

TEST(ControllerRegistry, DistinctMpcVariants) {
  EXPECT_EQ(MakeController("mpc")->Name(), "MPC");
  EXPECT_EQ(MakeController("robustmpc")->Name(), "RobustMPC");
  EXPECT_EQ(MakeController("fugu")->Name(), "Fugu");
}

class PredictorRegistryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PredictorRegistryTest, CreatesWorkingPredictor) {
  const predict::PredictorPtr predictor = MakePredictor(GetParam());
  ASSERT_NE(predictor, nullptr);
  predictor->Observe({0.0, 2.0, 10.0});
  const auto forecast = predictor->PredictHorizon(2.0, 3, 2.0);
  ASSERT_EQ(forecast.size(), 3u);
  for (const double v : forecast) EXPECT_GT(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorRegistryTest,
                         ::testing::ValuesIn(PredictorNames()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PredictorRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)MakePredictor("psychic"), std::invalid_argument);
}

TEST(PredictorRegistry, QuantileVariantsDiffer) {
  const auto p10 = MakePredictor("p10");
  const auto p50 = MakePredictor("p50");
  for (double v : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    p10->Observe({0.0, 1.0, v});
    p50->Observe({0.0, 1.0, v});
  }
  EXPECT_LT(p10->PredictOne(5.0, 1.0), p50->PredictOne(5.0, 1.0));
}

}  // namespace
}  // namespace soda::core
