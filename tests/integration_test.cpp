// Cross-module integration tests: full controller-vs-controller evaluations
// on emulated dataset sessions, asserting the headline *shape* properties
// the paper reports (section 6.1.3).
#include <memory>

#include <gtest/gtest.h>

#include "abr/bola.hpp"
#include "abr/dynamic.hpp"
#include "abr/hyb.hpp"
#include "abr/mpc.hpp"
#include "core/soda_controller.hpp"
#include "media/quality.hpp"
#include "net/dataset.hpp"
#include "predict/ema.hpp"
#include "predict/oracle.hpp"
#include "qoe/eval.hpp"

namespace soda {
namespace {

using qoe::EvalConfig;
using qoe::EvalResult;

struct Bench {
  std::vector<net::ThroughputTrace> sessions;
  media::VideoModel video{media::YoutubeHfr4kLadder(), {.segment_seconds = 2.0}};
  EvalConfig config;

  explicit Bench(net::DatasetKind kind, std::size_t n) {
    Rng rng(2024);
    sessions = net::DatasetEmulator(kind).MakeSessions(n, rng);
    config.utility = [u = media::NormalizedLogUtility(
                          media::YoutubeHfr4kLadder())](double mbps) {
      return u.At(mbps);
    };
    config.sim.max_buffer_s = 20.0;
    config.sim.live = true;
    config.sim.live_latency_s = 20.0;
  }

  EvalResult Run(const qoe::ControllerFactory& factory) {
    return EvaluateController(
        sessions, factory,
        [](const net::ThroughputTrace&) {
          return predict::PredictorPtr(std::make_unique<predict::EmaPredictor>());
        },
        video, config);
  }
};

TEST(Integration, SodaSwitchesFarLessThanHyb) {
  Bench bench(net::DatasetKind::kPuffer, 12);
  const EvalResult soda =
      bench.Run([] { return std::make_unique<core::SodaController>(); });
  const EvalResult hyb =
      bench.Run([] { return std::make_unique<abr::HybController>(); });
  EXPECT_LT(soda.aggregate.switch_rate.Mean(),
            hyb.aggregate.switch_rate.Mean() * 0.5);
}

TEST(Integration, SodaSwitchesLessThanDynamic) {
  Bench bench(net::DatasetKind::kPuffer, 12);
  const EvalResult soda =
      bench.Run([] { return std::make_unique<core::SodaController>(); });
  const EvalResult dynamic =
      bench.Run([] { return std::make_unique<abr::DynamicController>(); });
  EXPECT_LT(soda.aggregate.switch_rate.Mean(),
            dynamic.aggregate.switch_rate.Mean());
}

TEST(Integration, SodaQoeBeatsBaselinesOnPuffer) {
  Bench bench(net::DatasetKind::kPuffer, 12);
  const EvalResult soda =
      bench.Run([] { return std::make_unique<core::SodaController>(); });
  const EvalResult bola =
      bench.Run([] { return std::make_unique<abr::BolaController>(); });
  const EvalResult hyb =
      bench.Run([] { return std::make_unique<abr::HybController>(); });
  EXPECT_GT(soda.aggregate.qoe.Mean(), bola.aggregate.qoe.Mean());
  EXPECT_GT(soda.aggregate.qoe.Mean(), hyb.aggregate.qoe.Mean());
}

TEST(Integration, SodaKeepsRebufferingLowOn4G) {
  Bench bench(net::DatasetKind::k4G, 10);
  bench.video = media::VideoModel(
      media::YoutubeHfr4kLadder().WithoutTopRungs(2), {.segment_seconds = 2.0});
  const EvalResult soda =
      bench.Run([] { return std::make_unique<core::SodaController>(); });
  EXPECT_LT(soda.aggregate.rebuffer_ratio.Mean(), 0.05);
  EXPECT_GT(soda.aggregate.utility.Mean(), 0.3);
}

TEST(Integration, MpcDegradesMoreThanSodaUnderVolatility) {
  Bench bench(net::DatasetKind::k5G, 10);
  bench.video = media::VideoModel(
      media::YoutubeHfr4kLadder().WithoutTopRungs(2), {.segment_seconds = 2.0});
  const EvalResult soda =
      bench.Run([] { return std::make_unique<core::SodaController>(); });
  const EvalResult mpc =
      bench.Run([] { return std::make_unique<abr::MpcController>(); });
  // MPC rebuffers more on volatile mobile conditions (section 6.1.3).
  EXPECT_GE(mpc.aggregate.rebuffer_ratio.Mean(),
            soda.aggregate.rebuffer_ratio.Mean());
  EXPECT_GT(soda.aggregate.qoe.Mean(), mpc.aggregate.qoe.Mean());
}

TEST(Integration, EvaluationIsDeterministic) {
  Bench a(net::DatasetKind::kPuffer, 5);
  Bench b(net::DatasetKind::kPuffer, 5);
  const EvalResult ra =
      a.Run([] { return std::make_unique<core::SodaController>(); });
  const EvalResult rb =
      b.Run([] { return std::make_unique<core::SodaController>(); });
  ASSERT_EQ(ra.per_session.size(), rb.per_session.size());
  for (std::size_t i = 0; i < ra.per_session.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.per_session[i].qoe, rb.per_session[i].qoe);
  }
}

TEST(Integration, OraclePredictorImprovesOrMatchesSoda) {
  Bench bench(net::DatasetKind::k4G, 8);
  bench.video = media::VideoModel(
      media::YoutubeHfr4kLadder().WithoutTopRungs(2), {.segment_seconds = 2.0});
  const EvalResult ema =
      bench.Run([] { return std::make_unique<core::SodaController>(); });

  const EvalResult oracle = EvaluateControllerOn(
      bench.sessions, {0, 1, 2, 3, 4, 5, 6, 7},
      [] { return std::make_unique<core::SodaController>(); },
      [](const net::ThroughputTrace& trace) {
        return predict::PredictorPtr(
            std::make_unique<predict::OraclePredictor>(trace));
      },
      bench.video, bench.config);
  // Perfect predictions should not hurt.
  EXPECT_GE(oracle.aggregate.qoe.Mean(), ema.aggregate.qoe.Mean() - 0.05);
}

TEST(Integration, AllControllersProduceSaneMetrics) {
  Bench bench(net::DatasetKind::kPuffer, 6);
  const std::vector<qoe::ControllerFactory> factories = {
      [] { return abr::ControllerPtr(std::make_unique<core::SodaController>()); },
      [] { return abr::ControllerPtr(std::make_unique<abr::HybController>()); },
      [] { return abr::ControllerPtr(std::make_unique<abr::BolaController>()); },
      [] { return abr::ControllerPtr(std::make_unique<abr::DynamicController>()); },
      [] { return abr::ControllerPtr(std::make_unique<abr::MpcController>()); },
  };
  for (const auto& factory : factories) {
    const EvalResult result = bench.Run(factory);
    EXPECT_EQ(result.aggregate.SessionCount(), 6u);
    EXPECT_GE(result.aggregate.utility.Mean(), 0.0);
    EXPECT_LE(result.aggregate.utility.Mean(), 1.0);
    EXPECT_GE(result.aggregate.rebuffer_ratio.Mean(), 0.0);
    EXPECT_LE(result.aggregate.rebuffer_ratio.Mean(), 1.0);
    EXPECT_GE(result.aggregate.switch_rate.Mean(), 0.0);
    EXPECT_LE(result.aggregate.switch_rate.Mean(), 1.0);
  }
}

}  // namespace
}  // namespace soda
