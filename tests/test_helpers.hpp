// Shared fixtures for controller and simulator tests.
#pragma once

#include <memory>

#include "abr/controller.hpp"
#include "media/video_model.hpp"
#include "predict/fixed.hpp"

namespace soda::testing {

// Bundles a video model and fixed predictor and hands out contexts.
class ContextFixture {
 public:
  explicit ContextFixture(media::BitrateLadder ladder,
                          double segment_seconds = 2.0,
                          double max_buffer_s = 20.0)
      : video_(std::move(ladder), {.segment_seconds = segment_seconds}),
        predictor_(10.0),
        max_buffer_s_(max_buffer_s) {}

  void SetThroughput(double mbps) { predictor_.Set(mbps); }

  [[nodiscard]] abr::Context Make(double buffer_s, media::Rung prev_rung,
                                  double now_s = 100.0,
                                  std::int64_t segment_index = 50,
                                  bool playing = true) {
    abr::Context context;
    context.now_s = now_s;
    context.buffer_s = buffer_s;
    context.prev_rung = prev_rung;
    context.segment_index = segment_index;
    context.playing = playing;
    context.max_buffer_s = max_buffer_s_;
    context.video = &video_;
    context.predictor = &predictor_;
    return context;
  }

  [[nodiscard]] const media::VideoModel& Video() const { return video_; }

 private:
  media::VideoModel video_;
  predict::FixedPredictor predictor_;
  double max_buffer_s_;
};

}  // namespace soda::testing
