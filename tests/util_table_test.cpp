#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/ascii_plot.hpp"

namespace soda {
namespace {

TEST(ConsoleTable, RendersAlignedColumns) {
  ConsoleTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 12345"), std::string::npos);
  // Every line has the same width.
  std::size_t width = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t end = out.find('\n', pos);
    const std::size_t len = end - pos;
    if (width == std::string::npos) width = len;
    EXPECT_EQ(len, width);
    pos = end + 1;
  }
}

TEST(ConsoleTable, RowCellCountMismatchThrows) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
}

TEST(ConsoleTable, EmptyColumnsThrows) {
  EXPECT_THROW(ConsoleTable({}), std::invalid_argument);
}

TEST(ConsoleTable, SeparatorRenders) {
  ConsoleTable table({"x"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.Render();
  // 3 border separators + 1 group separator = 4 lines starting with '+'.
  int separators = 0;
  std::size_t pos = 0;
  while ((pos = out.find("\n+", pos)) != std::string::npos) {
    ++separators;
    ++pos;
  }
  EXPECT_EQ(separators, 3);  // header sep + mid sep + bottom (top has no \n)
}

TEST(Format, Double) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 0), "-1");
}

TEST(Format, WithCi) {
  EXPECT_EQ(FormatWithCi(1.5, 0.25, 2), "1.50 +/- 0.25");
}

TEST(Format, Percent) {
  EXPECT_EQ(FormatPercent(-0.123, 1), "-12.3%");
  EXPECT_EQ(FormatPercent(0.05, 1), "+5.0%");
}

TEST(AsciiPlot, LinePlotContainsGlyphsAndLegend) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<std::vector<double>> series = {{0, 1, 2, 3}, {3, 2, 1, 0}};
  const std::string out =
      RenderLinePlot(x, series, {"up", "down"}, PlotOptions{.width = 20, .height = 8, .x_label = "", .y_label = ""});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("up"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
}

TEST(AsciiPlot, HeatMapBlanksNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::vector<double>> grid = {{0.0, 1.0}, {nan, 0.5}};
  const std::string out = RenderHeatMap(grid);
  EXPECT_NE(out.find("scale"), std::string::npos);
  // NaN cell renders as a blank inside the border.
  EXPECT_NE(out.find("  | "), std::string::npos);
}

TEST(AsciiPlot, ScatterHandlesConstantY) {
  const std::vector<double> x = {0, 1, 2};
  const std::vector<double> y = {5, 5, 5};
  const std::string out = RenderScatter(x, y, PlotOptions{.width = 10, .height = 4, .x_label = "", .y_label = ""});
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace soda
