// Batched decision-kernel regression pin (run via `ctest -L perf`).
//
// The correctness half — the batched kernel bit-identical to the scalar
// LookupDecision loop over a large deterministic input set — runs in every
// build type, including sanitizers. The timing half is compiled in only
// for Release (SODA_PERF_ASSERT) and pins the tentpole's floor: the
// batched kernel, min-of-reps, must never be slower than the scalar loop
// it replaced (the measured advantage is ~1.3-1.6x; the pin is 1.0x so a
// noisy box cannot flake while a real regression — e.g. losing the
// boundary fast path on the default geometry — still trips it).
#include "core/batch_lookup.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "core/cached_controller.hpp"
#include "core/decision_table.hpp"
#include "core/quantized_table.hpp"
#include "media/bitrate_ladder.hpp"
#include "util/rng.hpp"

namespace soda::core {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kMaxBuffer = 20.0;

TEST(BatchKernelPerf, BatchedNeverSlowerThanScalarAndBitIdentical) {
  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  CachedControllerConfig cc;
  CostModelConfig mc;
  mc.weights = cc.base.weights;
  mc.dt_s = 2.0;
  mc.max_buffer_s = kMaxBuffer;
  mc.target_buffer_s =
      cc.base.target_buffer_s.value_or(cc.base.target_fraction * kMaxBuffer);
  mc.distortion = cc.base.distortion;
  SolverConfig sc;
  sc.hard_buffer_constraints = cc.base.hard_buffer_constraints;
  sc.tail_intervals = cc.base.tail_intervals;
  const CostModel model(ladder, mc);
  const MonotonicSolver solver(model, sc);
  const auto exact = std::make_shared<const DecisionTable>(BuildDecisionTable(
      model, solver, cc.base, cc.buffer_points, cc.throughput_points,
      cc.min_mbps, cc.max_mbps));
  const auto quantized = std::make_shared<const QuantizedDecisionTable>(
      QuantizeDecisionTable(*exact));
  const BatchDecisionKernel kernel(quantized, cc.lookup);
  ASSERT_TRUE(kernel.UsesBoundaryInversion())
      << "boundary fast path failed to verify on the default geometry";

  const int n = 65536;
  std::vector<double> buffer(n);
  std::vector<double> mbps(n);
  std::vector<std::int16_t> prev(n);
  std::vector<std::int16_t> scalar(n);
  std::vector<std::int16_t> batched(n);
  Rng rng(20240804);
  const double log_span = std::log(cc.max_mbps / cc.min_mbps);
  for (int i = 0; i < n; ++i) {
    buffer[i] = kMaxBuffer * rng.NextDouble();
    mbps[i] = cc.min_mbps * std::exp(log_span * rng.NextDouble());
    prev[i] = static_cast<std::int16_t>(
        static_cast<int>(rng.NextDouble() *
                         static_cast<double>(ladder.Count() + 1)) -
        1);
  }

  const int reps = 7;
  double scalar_ns = 0.0;
  double batched_ns = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = Clock::now();
    for (int i = 0; i < n; ++i) {
      scalar[i] = static_cast<std::int16_t>(
          LookupDecision(*quantized, cc.lookup, buffer[i], mbps[i], prev[i]));
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    if (rep == 0 || ns < scalar_ns) scalar_ns = ns;

    start = Clock::now();
    kernel.LookupBatch(buffer, mbps, prev, batched);
    const double bns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    if (rep == 0 || bns < batched_ns) batched_ns = bns;
  }

  EXPECT_EQ(scalar, batched)
      << "batched kernel diverged from the scalar oracle";

#ifdef SODA_PERF_ASSERT
  EXPECT_LE(batched_ns, scalar_ns)
      << "batched kernel slower than the scalar loop it replaced: "
      << batched_ns / n << " vs " << scalar_ns / n << " ns/lookup";
#else
  (void)scalar_ns;
  (void)batched_ns;
#endif
}

}  // namespace
}  // namespace soda::core
