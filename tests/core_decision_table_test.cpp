// Shared decision-table cache: instances with the same geometry adopt one
// immutable table; sharing is bit-identical to private per-instance builds
// (same cells, same decisions, same session logs, any thread count).
#include "core/decision_table.hpp"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cached_controller.hpp"
#include "media/quality.hpp"
#include "media/video_model.hpp"
#include "net/generators.hpp"
#include "predict/ema.hpp"
#include "qoe/eval.hpp"
#include "sim/session.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace soda::core {
namespace {

media::BitrateLadder TestLadder() {
  return media::BitrateLadder({1.0, 2.5, 5.0, 8.0});
}

TEST(DecisionTableCache, InstancesWithSameGeometryShareOneTable) {
  ClearDecisionTableCacheForTesting();
  soda::testing::ContextFixture fixture(TestLadder());
  CachedDecisionController a;
  CachedDecisionController b;
  (void)a.ChooseRung(fixture.Make(8.0, 1));
  (void)b.ChooseRung(fixture.Make(4.0, 2));
  ASSERT_NE(a.Table(), nullptr);
  EXPECT_EQ(a.Table().get(), b.Table().get());
  EXPECT_EQ(DecisionTableCacheSize(), 1u);
  // Each instance saw one geometry (one adoption), even though only one
  // build ran process-wide.
  EXPECT_EQ(a.GetStats().table_builds, 1);
  EXPECT_EQ(b.GetStats().table_builds, 1);
}

TEST(DecisionTableCache, PrivateBuildMatchesSharedBitwise) {
  ClearDecisionTableCacheForTesting();
  soda::testing::ContextFixture fixture(TestLadder());
  CachedControllerConfig private_config;
  private_config.share_table = false;
  CachedDecisionController shared;
  CachedDecisionController priv(private_config);
  (void)shared.ChooseRung(fixture.Make(8.0, 1));
  (void)priv.ChooseRung(fixture.Make(8.0, 1));

  ASSERT_NE(shared.Table(), nullptr);
  ASSERT_NE(priv.Table(), nullptr);
  EXPECT_NE(shared.Table().get(), priv.Table().get());
  const DecisionTable& s = *shared.Table();
  const DecisionTable& p = *priv.Table();
  ASSERT_EQ(s.buffer_axis.size(), p.buffer_axis.size());
  ASSERT_EQ(s.throughput_axis.size(), p.throughput_axis.size());
  for (std::size_t i = 0; i < s.buffer_axis.size(); ++i) {
    EXPECT_EQ(s.buffer_axis[i], p.buffer_axis[i]);
  }
  for (std::size_t i = 0; i < s.throughput_axis.size(); ++i) {
    EXPECT_EQ(s.throughput_axis[i], p.throughput_axis[i]);
  }
  EXPECT_EQ(s.log_min_mbps, p.log_min_mbps);
  EXPECT_EQ(s.inv_log_step, p.inv_log_step);
  EXPECT_EQ(s.rung_count, p.rung_count);
  ASSERT_EQ(s.cells.size(), p.cells.size());
  EXPECT_EQ(s.cells, p.cells);
}

TEST(DecisionTableCache, DistinctConfigurationsGetDistinctTables) {
  ClearDecisionTableCacheForTesting();
  soda::testing::ContextFixture fixture(TestLadder());
  CachedControllerConfig wide;
  wide.max_mbps = 200.0;
  CachedDecisionController a;
  CachedDecisionController b(wide);
  (void)a.ChooseRung(fixture.Make(8.0, 1));
  (void)b.ChooseRung(fixture.Make(8.0, 1));
  EXPECT_NE(a.Table().get(), b.Table().get());
  EXPECT_EQ(DecisionTableCacheSize(), 2u);
}

TEST(DecisionTableCache, KeyCoversLadderAndGrid) {
  const media::BitrateLadder ladder_a = TestLadder();
  const media::BitrateLadder ladder_b({1.0, 2.5, 5.0, 8.5});
  CostModelConfig mc;
  SodaConfig base;
  const std::string key =
      DecisionTableKey(ladder_a, mc, base, 48, 64, 0.2, 150.0);
  EXPECT_EQ(key, DecisionTableKey(ladder_a, mc, base, 48, 64, 0.2, 150.0));
  EXPECT_NE(key, DecisionTableKey(ladder_b, mc, base, 48, 64, 0.2, 150.0));
  EXPECT_NE(key, DecisionTableKey(ladder_a, mc, base, 48, 64, 0.2, 151.0));
  EXPECT_NE(key, DecisionTableKey(ladder_a, mc, base, 47, 64, 0.2, 150.0));
  CostModelConfig mc_shifted = mc;
  mc_shifted.target_buffer_s += 1e-12;
  EXPECT_NE(key,
            DecisionTableKey(ladder_a, mc_shifted, base, 48, 64, 0.2, 150.0));
}

TEST(DecisionTableCache, SessionsIdenticalSharedVsPrivate) {
  ClearDecisionTableCacheForTesting();
  const media::VideoModel video(TestLadder(), {.segment_seconds = 2.0});
  CachedControllerConfig private_config;
  private_config.share_table = false;
  CachedDecisionController shared;
  CachedDecisionController priv(private_config);

  Rng rng(42);
  net::RandomWalkConfig walk;
  walk.duration_s = 300.0;
  for (int i = 0; i < 4; ++i) {
    const net::ThroughputTrace trace = net::RandomWalkTrace(walk, rng);
    sim::SimConfig config;
    predict::EmaPredictor predictor_a;
    predict::EmaPredictor predictor_b;
    const sim::SessionLog log_a =
        sim::RunSession(trace, shared, predictor_a, video, config);
    const sim::SessionLog log_b =
        sim::RunSession(trace, priv, predictor_b, video, config);
    ASSERT_EQ(log_a.segments.size(), log_b.segments.size());
    for (std::size_t s = 0; s < log_a.segments.size(); ++s) {
      EXPECT_EQ(log_a.segments[s].rung, log_b.segments[s].rung);
      EXPECT_EQ(log_a.segments[s].download_s, log_b.segments[s].download_s);
      EXPECT_EQ(log_a.segments[s].buffer_after_s,
                log_b.segments[s].buffer_after_s);
    }
    EXPECT_EQ(log_a.total_rebuffer_s, log_b.total_rebuffer_s);
    EXPECT_EQ(log_a.total_wait_s, log_b.total_wait_s);
    EXPECT_EQ(log_a.startup_s, log_b.startup_s);
  }
}

TEST(DecisionTableCache, EvalBitIdenticalAtAnyThreadCount) {
  ClearDecisionTableCacheForTesting();
  const media::BitrateLadder ladder = TestLadder();
  const media::VideoModel video(ladder, {.segment_seconds = 2.0});
  Rng rng(7);
  net::RandomWalkConfig walk;
  walk.duration_s = 240.0;
  std::vector<net::ThroughputTrace> sessions;
  for (int i = 0; i < 6; ++i) sessions.push_back(net::RandomWalkTrace(walk, rng));

  qoe::EvalConfig config;
  config.utility = [u = media::NormalizedLogUtility(ladder)](double mbps) {
    return u.At(mbps);
  };
  const auto make_controller = [] {
    return std::make_unique<CachedDecisionController>();
  };
  const auto make_predictor = [](const net::ThroughputTrace&) {
    return std::make_unique<predict::EmaPredictor>();
  };

  config.threads = 1;
  const qoe::EvalResult serial = qoe::EvaluateController(
      sessions, make_controller, make_predictor, video, config);
  config.threads = 3;
  const qoe::EvalResult parallel = qoe::EvaluateController(
      sessions, make_controller, make_predictor, video, config);

  ASSERT_EQ(serial.per_session.size(), parallel.per_session.size());
  for (std::size_t i = 0; i < serial.per_session.size(); ++i) {
    EXPECT_EQ(serial.per_session[i].qoe, parallel.per_session[i].qoe);
    EXPECT_EQ(serial.per_session[i].mean_utility,
              parallel.per_session[i].mean_utility);
    EXPECT_EQ(serial.per_session[i].rebuffer_ratio,
              parallel.per_session[i].rebuffer_ratio);
    EXPECT_EQ(serial.per_session[i].switch_rate,
              parallel.per_session[i].switch_rate);
  }
  EXPECT_EQ(serial.aggregate.qoe.Mean(), parallel.aggregate.qoe.Mean());
}

}  // namespace
}  // namespace soda::core
