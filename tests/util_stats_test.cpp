#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace soda {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.CiHalfWidth95(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double v : values) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Gaussian(10.0, 3.0);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  RunningStats target;
  target.Merge(a);
  EXPECT_EQ(target.Count(), 2u);
  EXPECT_DOUBLE_EQ(target.Mean(), 1.5);
}

TEST(RunningStats, RelStdDev) {
  RunningStats s;
  s.Add(5.0);
  s.Add(15.0);
  // mean 10, sample std sqrt(50) ~ 7.071.
  EXPECT_NEAR(s.RelStdDev(), std::sqrt(50.0) / 10.0, 1e-12);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) small.Add(rng.Gaussian(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.Add(rng.Gaussian(0.0, 1.0));
  EXPECT_GT(small.CiHalfWidth95(), large.CiHalfWidth95());
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  Rng rng(17);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.Gaussian());
    y.push_back(rng.Gaussian());
  }
  EXPECT_LT(std::abs(PearsonCorrelation(x, y)), 0.03);
}

TEST(FitLine, RecoversSlopeIntercept) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.5 * i);
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.At(10.0), -2.0, 1e-12);
}

TEST(FitLine, ConstantXGivesFlatFit) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  const LinearFit fit = FitLine(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  // Sorted: 0, 10 -> p25 = 2.5.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 0.0}, 25.0), 2.5);
}

TEST(Percentile, ClampsBounds) {
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 150.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(Means, ArithmeticAndHarmonic) {
  const std::vector<double> v = {1.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(MeanOf(v), 3.0);
  EXPECT_DOUBLE_EQ(HarmonicMeanOf(v), 3.0 / 1.5);
}

TEST(Means, HarmonicIgnoresNonPositive) {
  const std::vector<double> v = {0.0, -2.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(HarmonicMeanOf(v), 4.0);
  EXPECT_DOUBLE_EQ(HarmonicMeanOf(std::vector<double>{}), 0.0);
}

TEST(Means, HarmonicLeqArithmetic) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v;
    for (int i = 0; i < 10; ++i) v.push_back(rng.Uniform(0.1, 100.0));
    EXPECT_LE(HarmonicMeanOf(v), MeanOf(v) + 1e-12);
  }
}

}  // namespace
}  // namespace soda
