#include <gtest/gtest.h>

#include "abr/bola.hpp"
#include "abr/dynamic.hpp"
#include "abr/hyb.hpp"
#include "abr/mpc.hpp"
#include "abr/production_baseline.hpp"
#include "abr/rl_like.hpp"
#include "abr/throughput_rule.hpp"
#include "test_helpers.hpp"

namespace soda::abr {
namespace {

using soda::testing::ContextFixture;

media::BitrateLadder Ladder() { return media::YoutubeHfr4kLadder(); }

// --- ThroughputRule ---

TEST(ThroughputRule, PicksHighestSustainable) {
  ContextFixture fx(Ladder());
  ThroughputRuleController controller(1.0);
  fx.SetThroughput(8.0);
  EXPECT_EQ(controller.ChooseRung(fx.Make(10.0, 2)), 2);  // 7.5 <= 8
  fx.SetThroughput(70.0);
  EXPECT_EQ(controller.ChooseRung(fx.Make(10.0, 2)), 5);
  fx.SetThroughput(1.0);
  EXPECT_EQ(controller.ChooseRung(fx.Make(10.0, 2)), 0);
}

TEST(ThroughputRule, SafetyDiscounts) {
  ContextFixture fx(Ladder());
  ThroughputRuleController controller(0.5);
  fx.SetThroughput(8.0);  // usable 4.0
  EXPECT_EQ(controller.ChooseRung(fx.Make(10.0, 2)), 1);
  EXPECT_THROW(ThroughputRuleController(0.0), std::invalid_argument);
  EXPECT_THROW(ThroughputRuleController(1.5), std::invalid_argument);
}

// --- HYB ---

TEST(Hyb, RespectsBufferBudget) {
  ContextFixture fx(Ladder());
  HybController controller(1.0, 0.0);
  fx.SetThroughput(10.0);
  // Buffer 1 s: segment at rung r costs 2*bitrate/10 s; needs <= 1 s so
  // bitrate <= 5 -> rung 1 (4 Mb/s).
  EXPECT_EQ(controller.ChooseRung(fx.Make(1.0, 3)), 1);
  // Buffer 10 s: bitrate <= 50 -> rung 4 (24).
  EXPECT_EQ(controller.ChooseRung(fx.Make(10.0, 3)), 4);
}

TEST(Hyb, MoreBufferNeverLowersChoice) {
  ContextFixture fx(Ladder());
  HybController controller;
  fx.SetThroughput(15.0);
  media::Rung prev = 0;
  media::Rung last = 0;
  for (double buffer = 0.5; buffer <= 20.0; buffer += 0.5) {
    const media::Rung r = controller.ChooseRung(fx.Make(buffer, prev));
    EXPECT_GE(r, last);
    last = r;
  }
}

TEST(Hyb, BeforePlaybackUsesSegmentBudget) {
  ContextFixture fx(Ladder());
  HybController controller(1.0, 0.0);
  fx.SetThroughput(10.0);
  // Not playing: budget is one segment duration (2 s) -> bitrate <= 10.
  EXPECT_EQ(controller.ChooseRung(fx.Make(0.0, -1, 0.0, 0, false)), 2);
}

// --- BOLA ---

TEST(Bola, ThresholdPlacementMatchesConfig) {
  BolaConfig config;
  config.buffer_low_s = 4.0;
  config.buffer_target_s = 18.0;
  const BolaController bola(config);
  const auto thresholds = bola.DecisionThresholds(Ladder());
  ASSERT_EQ(thresholds.size(), 5u);
  EXPECT_NEAR(thresholds.front(), 4.0, 1e-9);
  EXPECT_NEAR(thresholds.back(), 18.0, 1e-9);
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    EXPECT_GT(thresholds[i], thresholds[i - 1]);
  }
}

TEST(Bola, DecisionMonotoneInBuffer) {
  ContextFixture fx(Ladder());
  BolaController bola({.buffer_low_s = 4.0, .buffer_target_s = 18.0});
  media::Rung last = 0;
  for (double buffer = 0.0; buffer <= 20.0; buffer += 0.25) {
    const media::Rung r = bola.ChooseRung(fx.Make(buffer, 2));
    EXPECT_GE(r, last);
    last = r;
  }
  EXPECT_EQ(last, Ladder().HighestRung());
}

TEST(Bola, LowBufferPicksLowestHighBufferPicksHighest) {
  ContextFixture fx(Ladder());
  BolaController bola({.buffer_low_s = 4.0, .buffer_target_s = 18.0});
  EXPECT_EQ(bola.ChooseRung(fx.Make(0.5, 3)), 0);
  EXPECT_EQ(bola.ChooseRung(fx.Make(19.5, 0)), Ladder().HighestRung());
}

TEST(Bola, IgnoresThroughputEntirely) {
  ContextFixture fx(Ladder());
  BolaController bola;
  fx.SetThroughput(0.1);
  const media::Rung slow = bola.ChooseRung(fx.Make(10.0, 2));
  fx.SetThroughput(100.0);
  const media::Rung fast = bola.ChooseRung(fx.Make(10.0, 2));
  EXPECT_EQ(slow, fast);
}

TEST(Bola, LiveBufferCompressesThresholds) {
  // The Fig. 2 observation: a 120 s buffer spaces boundaries widely; a 20 s
  // buffer packs them into a few seconds of each other.
  const BolaController vod({.buffer_low_s = 10.0, .buffer_target_s = 110.0});
  const BolaController live({.buffer_low_s = 4.0, .buffer_target_s = 18.0});
  const auto vod_thresholds = vod.DecisionThresholds(Ladder());
  const auto live_thresholds = live.DecisionThresholds(Ladder());
  double vod_min_gap = 1e9;
  double live_max_gap = 0.0;
  for (std::size_t i = 1; i < vod_thresholds.size(); ++i) {
    vod_min_gap =
        std::min(vod_min_gap, vod_thresholds[i] - vod_thresholds[i - 1]);
    live_max_gap =
        std::max(live_max_gap, live_thresholds[i] - live_thresholds[i - 1]);
  }
  EXPECT_GT(vod_min_gap, live_max_gap);
}

TEST(Bola, ConfigValidation) {
  EXPECT_THROW(BolaController({.buffer_low_s = 0.0}), std::invalid_argument);
  EXPECT_THROW(
      BolaController({.buffer_low_s = 10.0, .buffer_target_s = 5.0}),
      std::invalid_argument);
}

// --- Dynamic ---

TEST(Dynamic, ThroughputModeAtLowBuffer) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  fx.SetThroughput(8.0);
  // Low buffer: throughput mode, 0.9 * 8 = 7.2 -> rung 1 (4 Mb/s); prev 1
  // so no switch limiting applies.
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(2.0, 1)), 1);
}

TEST(Dynamic, BolaModeAtHighBuffer) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  fx.SetThroughput(100.0);
  dynamic.Reset();
  // High buffer engages BOLA; with buffer near max BOLA wants the top rung,
  // and the one-step-up limit moves prev 4 -> 5.
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(19.0, 4)), 5);
}

TEST(Dynamic, UpswitchLimitedToOneRung) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  fx.SetThroughput(100.0);
  dynamic.Reset();
  const media::Rung r = dynamic.ChooseRung(fx.Make(19.0, 0));
  EXPECT_EQ(r, 1);  // wants top but climbs one rung at a time
}

TEST(Dynamic, UpswitchVetoAppliesInThroughputMode) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  dynamic.Reset();
  // Low buffer -> throughput mode. Prev rung 0; the rule wants rung 1
  // (0.9 * 5 = 4.5 >= 4) but the sustainability veto requires
  // 4 <= 0.85 * predicted, so at 4.2 Mb/s the step-up is vetoed.
  fx.SetThroughput(4.2);
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(2.0, 0)), 0);
  // With more headroom the step-up is allowed.
  fx.SetThroughput(6.0);
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(2.0, 0)), 1);
}

TEST(Dynamic, BolaModeUpswitchNotThroughputVetoed) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  dynamic.Reset();
  // High buffer -> BOLA mode; BOLA climbs on buffer alone (one rung at a
  // time) even when the throughput estimate would veto it, as in dash.js.
  fx.SetThroughput(4.2);
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(19.0, 1)), 2);
}

TEST(Dynamic, InsufficientBufferSafetyCapsChoice) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  dynamic.Reset();
  fx.SetThroughput(3.0);
  // Buffer 1 s while playing: download at rung r costs 2*bitrate/3 s and
  // must fit in ~1 s -> only rung 0 (1 s) fits.
  EXPECT_EQ(dynamic.ChooseRung(fx.Make(1.0, 0)), 0);
}

TEST(Dynamic, ModeHysteresis) {
  ContextFixture fx(Ladder());
  DynamicController dynamic;
  dynamic.Reset();
  fx.SetThroughput(8.0);
  // Enter BOLA mode at 12 s...
  (void)dynamic.ChooseRung(fx.Make(12.0, 2));
  // ...stay in BOLA mode at 7 s (above half threshold)...
  const media::Rung in_bola = dynamic.ChooseRung(fx.Make(7.0, 2));
  // ...drop out below 5 s.
  (void)dynamic.ChooseRung(fx.Make(4.0, 2));
  const media::Rung in_throughput = dynamic.ChooseRung(fx.Make(7.0, 2));
  // BOLA at 7 s with these defaults sits lower than the throughput rule's
  // 0.9*8 -> both defined; just assert decisions are valid and the mode
  // transition happened (BOLA at 7 s picks rung <= throughput's pick).
  EXPECT_LE(in_bola, in_throughput);
}

// --- MPC ---

TEST(Mpc, StableConditionsPickSustainableRung) {
  ContextFixture fx(Ladder());
  MpcController mpc;
  fx.SetThroughput(8.0);
  const media::Rung r = mpc.ChooseRung(fx.Make(10.0, 2));
  // 7.5 Mb/s is sustainable; MPC may also spend buffer on 12 Mb/s within
  // its myopic horizon (the buffer-draining greed the paper criticizes),
  // but never rebuffers or drops quality here.
  EXPECT_GE(r, 2);
  EXPECT_LE(r, 3);
}

TEST(Mpc, LowBufferLowThroughputBacksOff) {
  ContextFixture fx(Ladder());
  MpcController mpc;
  fx.SetThroughput(2.0);
  const media::Rung r = mpc.ChooseRung(fx.Make(1.0, 3));
  EXPECT_EQ(r, 0);
}

TEST(Mpc, SwitchPenaltyDampsOscillation) {
  ContextFixture fx(Ladder());
  MpcConfig smooth;
  smooth.switch_penalty = 50.0;  // prohibitive
  MpcController mpc(smooth);
  fx.SetThroughput(8.0);
  // Huge switch penalty: stays on the previous rung when feasible.
  EXPECT_EQ(mpc.ChooseRung(fx.Make(10.0, 1)), 1);
}

TEST(Mpc, EvaluatesExponentiallyManySequences) {
  ContextFixture fx(Ladder());
  MpcConfig config;
  config.horizon = 3;
  config.switch_penalty = 0.0;  // disable pruning-friendly structure
  config.rebuffer_penalty_per_s = 0.0;
  MpcController mpc(config);
  fx.SetThroughput(8.0);
  (void)mpc.ChooseRung(fx.Make(10.0, 2));
  // Without penalties every sequence ties; pruning keeps <= |R|^K leaves.
  EXPECT_GT(mpc.LastSequencesEvaluated(), 0);
  EXPECT_LE(mpc.LastSequencesEvaluated(), 6 * 6 * 6);
}

TEST(Mpc, PredictionScaleIsConservative) {
  ContextFixture fx(Ladder());
  MpcConfig conservative;
  conservative.prediction_scale = 0.5;
  MpcController scaled(conservative);
  MpcController plain;
  fx.SetThroughput(8.0);
  EXPECT_LE(scaled.ChooseRung(fx.Make(6.0, 2)),
            plain.ChooseRung(fx.Make(6.0, 2)));
}

TEST(Mpc, ConfigValidation) {
  EXPECT_THROW(MpcController({.horizon = 0}), std::invalid_argument);
  MpcConfig bad_scale;
  bad_scale.prediction_scale = 1.5;
  EXPECT_THROW((MpcController{bad_scale}), std::invalid_argument);
}

// --- RL-like ---

TEST(RlLike, TrainsLazilyAndPicksValidRungs) {
  ContextFixture fx(Ladder());
  RlLikeController rl;
  EXPECT_FALSE(rl.Trained());
  fx.SetThroughput(8.0);
  const media::Rung r = rl.ChooseRung(fx.Make(10.0, 2));
  EXPECT_TRUE(rl.Trained());
  EXPECT_TRUE(Ladder().IsValidRung(r));
}

TEST(RlLike, HigherThroughputHigherRung) {
  ContextFixture fx(Ladder());
  RlLikeController rl;
  fx.SetThroughput(1.0);
  const media::Rung slow = rl.ChooseRung(fx.Make(10.0, 2));
  fx.SetThroughput(60.0);
  const media::Rung fast = rl.ChooseRung(fx.Make(10.0, 2));
  EXPECT_GT(fast, slow);
}

TEST(RlLike, EmptyBufferLowThroughputIsCautious) {
  ContextFixture fx(Ladder());
  RlLikeController rl;
  fx.SetThroughput(2.0);
  EXPECT_EQ(rl.ChooseRung(fx.Make(0.5, 3)), 0);
}

TEST(RlLike, DeterministicPolicy) {
  ContextFixture fx(Ladder());
  RlLikeController a;
  RlLikeController b;
  fx.SetThroughput(12.0);
  for (double buffer = 1.0; buffer < 20.0; buffer += 3.0) {
    EXPECT_EQ(a.ChooseRung(fx.Make(buffer, 2)),
              b.ChooseRung(fx.Make(buffer, 2)));
  }
}

TEST(RlLike, ConfigValidation) {
  EXPECT_THROW(RlLikeController({.buffer_bins = 1}), std::invalid_argument);
  RlLikeConfig bad_discount;
  bad_discount.discount = 1.0;
  EXPECT_THROW((RlLikeController{bad_discount}), std::invalid_argument);
}

// --- Production baseline ---

TEST(ProductionBaseline, TracksThroughput) {
  ContextFixture fx(media::PrimeVideoProductionLadder());
  ProductionBaselineController controller;
  fx.SetThroughput(6.0);
  const media::Rung r = controller.ChooseRung(fx.Make(15.0, 7));
  // 0.85 * 6 = 5.1 -> rung of 5.0 Mb/s (index 7).
  EXPECT_EQ(r, 7);
}

TEST(ProductionBaseline, LowBufferDerisks) {
  ContextFixture fx(media::PrimeVideoProductionLadder());
  ProductionBaselineController controller;
  fx.SetThroughput(6.0);
  const media::Rung high_buffer = controller.ChooseRung(fx.Make(15.0, 7));
  const media::Rung low_buffer = controller.ChooseRung(fx.Make(2.0, 7));
  EXPECT_LT(low_buffer, high_buffer);
}

TEST(ProductionBaseline, HysteresisHoldsWithoutMargin) {
  ContextFixture fx(media::PrimeVideoProductionLadder());
  ProductionBaselineController controller;
  // usable = 0.85 * 5 = 4.25. Next rung up from 1.8 (idx 4) is 2.0, needs
  // 2.0 * 1.1 = 2.2 <= 4.25 -> climbs. From 4.0 (idx 6): 5.0*1.1 = 5.5 >
  // 4.25 -> holds.
  fx.SetThroughput(5.0);
  EXPECT_EQ(controller.ChooseRung(fx.Make(15.0, 4)), 5);
  EXPECT_EQ(controller.ChooseRung(fx.Make(15.0, 6)), 6);
}

}  // namespace
}  // namespace soda::abr
