// MetricsRegistry: registration semantics, recording, and the determinism
// contract — a snapshot merged from per-thread shards is bit-identical for
// any worker count because merging is exact integer summation.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace soda::obs {
namespace {

TEST(MetricsRegistry, CounterAddsAndSnapshots) {
  MetricsRegistry registry;
  const Counter c = registry.GetCounter("test.counter");
  c.Add();
  c.Add(41);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("test.counter"), 1u);
  EXPECT_EQ(snapshot.counters.at("test.counter"), 42u);
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  const Counter a = registry.GetCounter("same.name");
  const Counter b = registry.GetCounter("same.name");
  a.Add(1);
  b.Add(2);
  EXPECT_EQ(registry.Snapshot().counters.at("same.name"), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.GetCounter("metric.x");
  EXPECT_THROW((void)registry.GetGauge("metric.x"), std::exception);
  EXPECT_THROW((void)registry.GetHistogram("metric.x", {1.0}), std::exception);
}

TEST(MetricsRegistry, HistogramBoundsMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.GetHistogram("hist", {1.0, 2.0});
  EXPECT_NO_THROW((void)registry.GetHistogram("hist", {1.0, 2.0}));
  EXPECT_THROW((void)registry.GetHistogram("hist", {1.0, 3.0}),
               std::exception);
}

TEST(MetricsRegistry, HistogramBucketAssignment) {
  MetricsRegistry registry;
  const Histogram h = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  h.Record(0.5);   // bucket 0 (<= 1.0)
  h.Record(1.0);   // bucket 0 (inclusive upper bound)
  h.Record(1.5);   // bucket 1
  h.Record(4.0);   // bucket 2
  h.Record(99.0);  // overflow bucket
  const HistogramSnapshot snapshot = registry.Snapshot().histograms.at("h");
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.TotalCount(), 5u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  const Gauge g = registry.GetGauge("gauge");
  g.Set(1.0);
  g.Set(2.5);
  EXPECT_EQ(registry.Snapshot().gauges.at("gauge"), 2.5);
}

TEST(MetricsRegistry, DisabledRecordingIsANoOp) {
  MetricsRegistry registry;
  const Counter c = registry.GetCounter("c");
  registry.SetEnabled(false);
  c.Add(100);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 0u);
  registry.SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 1u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  const Counter c = registry.GetCounter("c");
  const Histogram h = registry.GetHistogram("h", {1.0});
  c.Add(7);
  h.Record(0.5);
  registry.Reset();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 0u);
  EXPECT_EQ(snapshot.histograms.at("h").TotalCount(), 0u);
  c.Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 1u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.Add();       // must not crash
  g.Set(1.0);    // must not crash
  h.Record(1.0); // must not crash
}

// The determinism contract: the same logical workload recorded under 1, 2,
// 4 and 7 workers must merge to the identical snapshot — shard merging is
// exact integer summation, so interleaving and thread count cannot leak
// into the result.
TEST(MetricsRegistry, SnapshotIdenticalAcrossThreadCounts) {
  constexpr std::size_t kItems = 1000;
  MetricsSnapshot baseline;
  for (const int threads : {1, 2, 4, 7}) {
    MetricsRegistry registry;
    const Counter counter = registry.GetCounter("work.items");
    const Histogram histogram =
        registry.GetHistogram("work.values", {100.0, 300.0, 700.0});
    util::ParallelFor(kItems, threads, [&](int /*worker*/, std::size_t i) {
      counter.Add(i % 3 + 1);
      histogram.Record(static_cast<double>(i));
    });
    const MetricsSnapshot snapshot = registry.Snapshot();
    if (threads == 1) {
      baseline = snapshot;
      // Sanity-check the serial reference itself.
      EXPECT_EQ(snapshot.counters.at("work.items"), 1999u);
      EXPECT_EQ(snapshot.histograms.at("work.values").TotalCount(), kItems);
      continue;
    }
    EXPECT_EQ(snapshot.counters, baseline.counters) << threads << " threads";
    ASSERT_EQ(snapshot.histograms.size(), baseline.histograms.size());
    for (const auto& [name, hist] : baseline.histograms) {
      EXPECT_EQ(snapshot.histograms.at(name).counts, hist.counts)
          << name << " @ " << threads << " threads";
    }
  }
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  HistogramSnapshot hist;
  hist.bounds = {10.0, 20.0};
  hist.counts = {0, 0, 0};
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  EXPECT_EQ(HistogramSnapshot{}.Quantile(0.99), 0.0);
}

// Closed-form checks of the interpolation: 10 samples in (0, 10], 20 in
// (10, 20], 10 in (20, 40], overflow empty.
TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  HistogramSnapshot hist;
  hist.bounds = {10.0, 20.0, 40.0};
  hist.counts = {10, 20, 10, 0};
  EXPECT_DOUBLE_EQ(hist.Quantile(0.25), 10.0);  // rank 10 = first bucket top
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 15.0);   // rank 20, mid second bucket
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 39.2);  // rank 39.6 in third bucket
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 40.0);
  // q below one sample's mass resolves inside the first non-empty bucket.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 1.0);  // rank clamps to 1
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(hist.Quantile(-0.5), hist.Quantile(0.0));
  EXPECT_DOUBLE_EQ(hist.Quantile(2.0), hist.Quantile(1.0));
}

TEST(HistogramQuantile, OverflowBucketSaturatesAtLastBound) {
  HistogramSnapshot hist;
  hist.bounds = {1.0, 2.0};
  hist.counts = {1, 0, 9};  // 9 of 10 samples beyond the last bound
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.05), 1.0);
}

TEST(HistogramQuantile, NegativeFirstBoundExtendsTheFirstBucketDown) {
  HistogramSnapshot hist;
  hist.bounds = {-10.0, 10.0};
  hist.counts = {10, 0, 0};
  // First bucket spans (min(0, -10) .. -10] — degenerate width, so every
  // quantile pins to the bound.
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), -10.0);
}

// Against exact sample quantiles: uniform samples recorded through a real
// registry histogram; the linear-interpolation estimate must agree with
// the exact empirical quantile to within one bucket width.
TEST(HistogramQuantile, TracksExactQuantilesOfUniformSamples) {
  MetricsRegistry registry;
  std::vector<double> bounds;
  for (int b = 1; b <= 10; ++b) bounds.push_back(static_cast<double>(b));
  const Histogram histogram = registry.GetHistogram("u.values", bounds);
  std::vector<double> samples;
  constexpr int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = 10.0 * (static_cast<double>(i) + 0.5) / kSamples;
    samples.push_back(v);
    histogram.Record(v);
  }
  const HistogramSnapshot hist =
      registry.Snapshot().histograms.at("u.values");
  ASSERT_EQ(hist.TotalCount(), static_cast<std::uint64_t>(kSamples));
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(q * kSamples);
    const double exact =
        samples[std::min(rank, samples.size() - 1)];
    EXPECT_NEAR(hist.Quantile(q), exact, 1.0)
        << "q=" << q;  // 1.0 = one bucket width
  }
  // The estimate is exactly the bucket-uniform value at bucket-aligned
  // ranks: p50 of 1000 uniform samples over (0, 10] is 5.
  EXPECT_NEAR(hist.Quantile(0.5), 5.0, 0.05);
}

// WriteJson output is serialized from name-ordered maps: byte-identical
// runs regardless of registration or recording order.
TEST(MetricsRegistry, WriteJsonIsDeterministic) {
  auto run = [](bool reversed) {
    MetricsRegistry registry;
    const Counter a = registry.GetCounter(reversed ? "z.last" : "a.first");
    const Counter b = registry.GetCounter(reversed ? "a.first" : "z.last");
    (reversed ? b : a).Add(1);
    (reversed ? a : b).Add(2);
    std::ostringstream out;
    registry.WriteJson(out);
    return out.str();
  };
  const std::string forward = run(false);
  EXPECT_EQ(forward, run(true));
  EXPECT_NE(forward.find("\"a.first\": 1"), std::string::npos) << forward;
  EXPECT_NE(forward.find("\"z.last\": 2"), std::string::npos) << forward;
}

}  // namespace
}  // namespace soda::obs
