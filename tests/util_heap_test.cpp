#include "util/indexed_heap.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace soda::util {
namespace {

TEST(IndexedMinHeap, PopsHandlesInKeyOrder) {
  const std::vector<double> keys = {5.0, 1.0, 4.0, 2.0, 3.0};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) heap.Push(i);
  std::vector<std::size_t> order;
  while (!heap.Empty()) order.push_back(heap.PopTop());
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 4, 2, 0}));
}

TEST(IndexedMinHeap, SurvivesUniformDecay) {
  // All members' keys shift by the same amount between heap operations —
  // the shared-link engine's usage pattern (every in-flight download loses
  // share * dt per event). The heap must keep serving the minimum.
  std::vector<double> keys = {0.9, 0.3, 0.7, 0.5};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) heap.Push(i);

  for (double& k : keys) k -= 0.2999;
  EXPECT_EQ(heap.Top(), 1u);
  EXPECT_EQ(heap.PopTop(), 1u);

  // Reinsert with a fresh key (a new download), decay again, drain.
  keys[1] = 2.0;
  heap.Push(1);
  for (double& k : keys) k -= 0.1;
  EXPECT_EQ(heap.PopTop(), 3u);
  EXPECT_EQ(heap.PopTop(), 2u);
  EXPECT_EQ(heap.PopTop(), 0u);
  EXPECT_EQ(heap.PopTop(), 1u);
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedMinHeap, FuzzAgainstLinearScan) {
  Rng rng(0xD0DA);
  constexpr std::size_t kSlots = 48;
  std::vector<double> keys(kSlots, 0.0);
  std::vector<bool> in_heap(kSlots, false);
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, kSlots);

  for (int step = 0; step < 5000; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.45) {
      // Push a random free slot with a fresh key.
      std::size_t slot = rng.UniformInt(kSlots);
      for (std::size_t probe = 0; probe < kSlots && in_heap[slot]; ++probe) {
        slot = (slot + 1) % kSlots;
      }
      if (in_heap[slot]) continue;
      keys[slot] = rng.Uniform(0.0, 100.0);
      in_heap[slot] = true;
      heap.Push(slot);
    } else if (op < 0.7) {
      // Uniform decay of every member.
      const double decay = rng.Uniform(0.0, 5.0);
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i]) keys[i] -= decay;
      }
    } else if (op < 0.78) {
      // Reassign the top's key in place (the engine's completion →
      // next-download fusion) and re-sift.
      if (!heap.Empty()) {
        keys[heap.Top()] = rng.Uniform(0.0, 100.0);
        heap.ResiftTop();
      }
    } else if (!heap.Empty()) {
      // Pop and compare against a linear scan for the minimum key.
      double min_key = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i] && keys[i] < min_key) min_key = keys[i];
      }
      EXPECT_EQ(keys[heap.Top()], min_key);
      const std::size_t popped = heap.PopTop();
      EXPECT_TRUE(in_heap[popped]);
      EXPECT_EQ(keys[popped], min_key);
      in_heap[popped] = false;
    }
    EXPECT_EQ(heap.Size(),
              static_cast<std::size_t>(
                  std::count(in_heap.begin(), in_heap.end(), true)));
  }
}

}  // namespace
}  // namespace soda::util
