#include "util/indexed_heap.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace soda::util {
namespace {

TEST(IndexedMinHeap, PopsHandlesInKeyOrder) {
  const std::vector<double> keys = {5.0, 1.0, 4.0, 2.0, 3.0};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) heap.Push(i);
  std::vector<std::size_t> order;
  while (!heap.Empty()) order.push_back(heap.PopTop());
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 4, 2, 0}));
}

TEST(IndexedMinHeap, SurvivesUniformDecay) {
  // All members' keys shift by the same amount between heap operations —
  // the shared-link engine's usage pattern (every in-flight download loses
  // share * dt per event). The heap must keep serving the minimum.
  std::vector<double> keys = {0.9, 0.3, 0.7, 0.5};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) heap.Push(i);

  for (double& k : keys) k -= 0.2999;
  EXPECT_EQ(heap.Top(), 1u);
  EXPECT_EQ(heap.PopTop(), 1u);

  // Reinsert with a fresh key (a new download), decay again, drain.
  keys[1] = 2.0;
  heap.Push(1);
  for (double& k : keys) k -= 0.1;
  EXPECT_EQ(heap.PopTop(), 3u);
  EXPECT_EQ(heap.PopTop(), 2u);
  EXPECT_EQ(heap.PopTop(), 0u);
  EXPECT_EQ(heap.PopTop(), 1u);
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedMinHeap, FuzzAgainstLinearScan) {
  Rng rng(0xD0DA);
  constexpr std::size_t kSlots = 48;
  std::vector<double> keys(kSlots, 0.0);
  std::vector<bool> in_heap(kSlots, false);
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, kSlots);

  for (int step = 0; step < 5000; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.45) {
      // Push a random free slot with a fresh key.
      std::size_t slot = rng.UniformInt(kSlots);
      for (std::size_t probe = 0; probe < kSlots && in_heap[slot]; ++probe) {
        slot = (slot + 1) % kSlots;
      }
      if (in_heap[slot]) continue;
      keys[slot] = rng.Uniform(0.0, 100.0);
      in_heap[slot] = true;
      heap.Push(slot);
    } else if (op < 0.7) {
      // Uniform decay of every member.
      const double decay = rng.Uniform(0.0, 5.0);
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i]) keys[i] -= decay;
      }
    } else if (op < 0.78) {
      // Reassign the top's key in place (the engine's completion →
      // next-download fusion) and re-sift.
      if (!heap.Empty()) {
        keys[heap.Top()] = rng.Uniform(0.0, 100.0);
        heap.ResiftTop();
      }
    } else if (!heap.Empty()) {
      // Pop and compare against a linear scan for the minimum key.
      double min_key = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i] && keys[i] < min_key) min_key = keys[i];
      }
      EXPECT_EQ(keys[heap.Top()], min_key);
      const std::size_t popped = heap.PopTop();
      EXPECT_TRUE(in_heap[popped]);
      EXPECT_EQ(keys[popped], min_key);
      in_heap[popped] = false;
    }
    EXPECT_EQ(heap.Size(),
              static_cast<std::size_t>(
                  std::count(in_heap.begin(), in_heap.end(), true)));
  }
}

// Differential fuzz of the batch operations (ProcessMatching /
// DrainMatching / Assign) and the linear-search mutators (Update /
// Remove) against a sorted-vector model. Keys are drawn from a tiny set
// so duplicates — the crown batch-pop's whole reason to exist — dominate
// every operation; uniform decay keeps fractional keys in play.
void FuzzBatchOpsOneSeed(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);
  constexpr std::size_t kSlots = 40;
  std::vector<double> keys(kSlots, 0.0);
  std::vector<bool> in_heap(kSlots, false);
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key, kSlots);
  std::vector<std::size_t> drained;

  // Adversarial key pool: heavy duplication, including exact ties at the
  // drain threshold.
  const auto fresh_key = [&] {
    return static_cast<double>(rng.UniformInt(4)) * 10.0;
  };
  const auto member_count = [&] {
    return static_cast<std::size_t>(
        std::count(in_heap.begin(), in_heap.end(), true));
  };
  const auto min_key = [&] {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < kSlots; ++i) {
      if (in_heap[i]) best = std::min(best, keys[i]);
    }
    return best;
  };

  for (int step = 0; step < 3000; ++step) {
    const double op = rng.NextDouble();
    if (op < 0.30) {
      std::size_t slot = rng.UniformInt(kSlots);
      for (std::size_t probe = 0; probe < kSlots && in_heap[slot]; ++probe) {
        slot = (slot + 1) % kSlots;
      }
      if (in_heap[slot]) continue;
      keys[slot] = fresh_key();
      in_heap[slot] = true;
      heap.Push(slot);
    } else if (op < 0.42) {
      const double decay = rng.Uniform(0.0, 3.0);
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i]) keys[i] -= decay;
      }
    } else if (op < 0.57) {
      // DrainMatching at a threshold chosen to hit equal-key batches. The
      // drained set must be exactly the model's matching set.
      const double bound = min_key() + (rng.Chance(0.5) ? 0.0 : 10.0);
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i] && keys[i] <= bound) expected.push_back(i);
      }
      drained.clear();
      const std::size_t removed = heap.DrainMatching(
          [&](double k) { return k <= bound; }, drained);
      EXPECT_EQ(removed, drained.size());
      std::sort(drained.begin(), drained.end());
      EXPECT_EQ(drained, expected);
      for (const std::size_t i : drained) in_heap[i] = false;
    } else if (op < 0.70) {
      // ProcessMatching with a mixed visitor: some members re-key in place
      // (completion rolling into the next download), some drop out.
      const double bound = min_key() + (rng.Chance(0.5) ? 0.0 : 10.0);
      std::size_t expected = 0;
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i] && keys[i] <= bound) ++expected;
      }
      const std::size_t visited = heap.ProcessMatching(
          [&](double k) { return k <= bound; },
          [&](std::size_t i) {
            if ((i % 3) == 0) {
              in_heap[i] = false;
              return false;
            }
            // Keys may only be reassigned to no-smaller values in place.
            keys[i] += 10.0 + static_cast<double>(rng.UniformInt(3)) * 10.0;
            return true;
          });
      EXPECT_EQ(visited, expected);
    } else if (op < 0.78) {
      // Update: arbitrary in-place re-key of a random member.
      const std::size_t slot = rng.UniformInt(kSlots);
      keys[slot] = fresh_key() - rng.Uniform(0.0, 5.0);
      EXPECT_EQ(heap.Update(slot), in_heap[slot]);
    } else if (op < 0.86) {
      // Remove: a random slot, member or not.
      const std::size_t slot = rng.UniformInt(kSlots);
      EXPECT_EQ(heap.Remove(slot), in_heap[slot]);
      in_heap[slot] = false;
    } else if (op < 0.92) {
      // Assign: rebuild from the model's member set (Floyd heapify).
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < kSlots; ++i) {
        if (in_heap[i]) members.push_back(i);
      }
      heap.Assign(members.begin(), members.end());
    } else if (!heap.Empty()) {
      const double expected_min = min_key();
      EXPECT_EQ(keys[heap.Top()], expected_min);
      const std::size_t popped = heap.PopTop();
      EXPECT_TRUE(in_heap[popped]);
      in_heap[popped] = false;
    }
    ASSERT_EQ(heap.Size(), member_count());
    if (!heap.Empty()) EXPECT_EQ(keys[heap.Top()], min_key());
  }

  // Final drain must come out in sorted key order and cover every member.
  double prev = -std::numeric_limits<double>::infinity();
  while (!heap.Empty()) {
    const std::size_t popped = heap.PopTop();
    EXPECT_TRUE(in_heap[popped]);
    in_heap[popped] = false;
    EXPECT_GE(keys[popped], prev);
    prev = keys[popped];
  }
  EXPECT_EQ(member_count(), 0u);
}

TEST(IndexedMinHeap, FuzzBatchOpsManySeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FuzzBatchOpsOneSeed(0xBA7C0000u + seed);
  }
}

TEST(IndexedMinHeap, AssignHeapifiesArbitraryOrder) {
  const std::vector<double> keys = {7.0, 3.0, 3.0, 9.0, 1.0, 3.0};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key);
  const std::vector<std::size_t> members = {0, 1, 2, 3, 4, 5};
  heap.Assign(members.begin(), members.end());
  std::vector<double> popped;
  while (!heap.Empty()) popped.push_back(keys[heap.PopTop()]);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 3.0, 3.0, 3.0, 7.0, 9.0}));
}

TEST(IndexedMinHeap, DrainMatchingTakesWholeEqualKeyCrown) {
  std::vector<double> keys = {5.0, 5.0, 5.0, 5.0, 8.0, 9.0, 5.0};
  const auto key = [&](std::size_t i) { return keys[i]; };
  IndexedMinHeap<decltype(key)> heap(key);
  for (std::size_t i = 0; i < keys.size(); ++i) heap.Push(i);
  std::vector<std::size_t> out;
  EXPECT_EQ(heap.DrainMatching([](double k) { return k <= 5.0; }, out), 5u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2, 3, 6}));
  EXPECT_EQ(heap.Size(), 2u);
  EXPECT_EQ(keys[heap.Top()], 8.0);
}

}  // namespace
}  // namespace soda::util
