# Empty dependencies file for bench_fig11_noise_robustness.
# This may be replaced when dependencies are built.
