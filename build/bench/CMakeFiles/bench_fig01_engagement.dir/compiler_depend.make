# Empty compiler generated dependencies file for bench_fig01_engagement.
# This may be replaced when dependencies are built.
