file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_engagement.dir/bench_fig01_engagement.cpp.o"
  "CMakeFiles/bench_fig01_engagement.dir/bench_fig01_engagement.cpp.o.d"
  "bench_fig01_engagement"
  "bench_fig01_engagement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_engagement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
