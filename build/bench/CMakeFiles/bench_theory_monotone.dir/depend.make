# Empty dependencies file for bench_theory_monotone.
# This may be replaced when dependencies are built.
