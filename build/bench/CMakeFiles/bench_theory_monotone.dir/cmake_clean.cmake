file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_monotone.dir/bench_theory_monotone.cpp.o"
  "CMakeFiles/bench_theory_monotone.dir/bench_theory_monotone.cpp.o.d"
  "bench_theory_monotone"
  "bench_theory_monotone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_monotone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
