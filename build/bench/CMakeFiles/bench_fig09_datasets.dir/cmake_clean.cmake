file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_datasets.dir/bench_fig09_datasets.cpp.o"
  "CMakeFiles/bench_fig09_datasets.dir/bench_fig09_datasets.cpp.o.d"
  "bench_fig09_datasets"
  "bench_fig09_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
