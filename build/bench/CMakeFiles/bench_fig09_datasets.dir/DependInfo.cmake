
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_datasets.cpp" "bench/CMakeFiles/bench_fig09_datasets.dir/bench_fig09_datasets.cpp.o" "gcc" "bench/CMakeFiles/bench_fig09_datasets.dir/bench_fig09_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/soda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/soda_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/user/CMakeFiles/soda_user.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/soda_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/soda_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
