file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cpp.o"
  "CMakeFiles/bench_ablation_lowlatency.dir/bench_ablation_lowlatency.cpp.o.d"
  "bench_ablation_lowlatency"
  "bench_ablation_lowlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lowlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
