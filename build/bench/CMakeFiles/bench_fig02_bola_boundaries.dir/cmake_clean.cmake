file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_bola_boundaries.dir/bench_fig02_bola_boundaries.cpp.o"
  "CMakeFiles/bench_fig02_bola_boundaries.dir/bench_fig02_bola_boundaries.cpp.o.d"
  "bench_fig02_bola_boundaries"
  "bench_fig02_bola_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_bola_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
