# Empty compiler generated dependencies file for bench_fig02_bola_boundaries.
# This may be replaced when dependencies are built.
