# Empty compiler generated dependencies file for bench_theory_decay.
# This may be replaced when dependencies are built.
