file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_decay.dir/bench_theory_decay.cpp.o"
  "CMakeFiles/bench_theory_decay.dir/bench_theory_decay.cpp.o.d"
  "bench_theory_decay"
  "bench_theory_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
