file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_prototype.dir/bench_fig12_prototype.cpp.o"
  "CMakeFiles/bench_fig12_prototype.dir/bench_fig12_prototype.cpp.o.d"
  "bench_fig12_prototype"
  "bench_fig12_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
