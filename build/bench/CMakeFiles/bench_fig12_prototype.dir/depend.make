# Empty dependencies file for bench_fig12_prototype.
# This may be replaced when dependencies are built.
