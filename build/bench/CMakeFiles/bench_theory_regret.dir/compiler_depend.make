# Empty compiler generated dependencies file for bench_theory_regret.
# This may be replaced when dependencies are built.
