file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_regret.dir/bench_theory_regret.cpp.o"
  "CMakeFiles/bench_theory_regret.dir/bench_theory_regret.cpp.o.d"
  "bench_theory_regret"
  "bench_theory_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
