file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_production_ab.dir/bench_fig13_production_ab.cpp.o"
  "CMakeFiles/bench_fig13_production_ab.dir/bench_fig13_production_ab.cpp.o.d"
  "bench_fig13_production_ab"
  "bench_fig13_production_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_production_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
