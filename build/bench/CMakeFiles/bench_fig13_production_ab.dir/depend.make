# Empty dependencies file for bench_fig13_production_ab.
# This may be replaced when dependencies are built.
