# Empty compiler generated dependencies file for bench_fig05_decision_map.
# This may be replaced when dependencies are built.
