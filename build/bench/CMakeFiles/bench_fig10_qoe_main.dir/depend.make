# Empty dependencies file for bench_fig10_qoe_main.
# This may be replaced when dependencies are built.
