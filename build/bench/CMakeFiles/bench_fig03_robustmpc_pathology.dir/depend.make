# Empty dependencies file for bench_fig03_robustmpc_pathology.
# This may be replaced when dependencies are built.
