file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_robustmpc_pathology.dir/bench_fig03_robustmpc_pathology.cpp.o"
  "CMakeFiles/bench_fig03_robustmpc_pathology.dir/bench_fig03_robustmpc_pathology.cpp.o.d"
  "bench_fig03_robustmpc_pathology"
  "bench_fig03_robustmpc_pathology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_robustmpc_pathology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
