# Empty compiler generated dependencies file for bench_fig08_solver_optimality.
# This may be replaced when dependencies are built.
