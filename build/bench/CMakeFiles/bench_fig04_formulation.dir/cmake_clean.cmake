file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_formulation.dir/bench_fig04_formulation.cpp.o"
  "CMakeFiles/bench_fig04_formulation.dir/bench_fig04_formulation.cpp.o.d"
  "bench_fig04_formulation"
  "bench_fig04_formulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
