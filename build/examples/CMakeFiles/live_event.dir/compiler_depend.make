# Empty compiler generated dependencies file for live_event.
# This may be replaced when dependencies are built.
