file(REMOVE_RECURSE
  "CMakeFiles/live_event.dir/live_event.cpp.o"
  "CMakeFiles/live_event.dir/live_event.cpp.o.d"
  "live_event"
  "live_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
