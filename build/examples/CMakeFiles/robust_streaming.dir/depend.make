# Empty dependencies file for robust_streaming.
# This may be replaced when dependencies are built.
