file(REMOVE_RECURSE
  "CMakeFiles/robust_streaming.dir/robust_streaming.cpp.o"
  "CMakeFiles/robust_streaming.dir/robust_streaming.cpp.o.d"
  "robust_streaming"
  "robust_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
