# Empty compiler generated dependencies file for soda_theory.
# This may be replaced when dependencies are built.
