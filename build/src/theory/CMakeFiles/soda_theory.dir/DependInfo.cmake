
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/constants.cpp" "src/theory/CMakeFiles/soda_theory.dir/constants.cpp.o" "gcc" "src/theory/CMakeFiles/soda_theory.dir/constants.cpp.o.d"
  "/root/repo/src/theory/monotone_check.cpp" "src/theory/CMakeFiles/soda_theory.dir/monotone_check.cpp.o" "gcc" "src/theory/CMakeFiles/soda_theory.dir/monotone_check.cpp.o.d"
  "/root/repo/src/theory/offline_optimal.cpp" "src/theory/CMakeFiles/soda_theory.dir/offline_optimal.cpp.o" "gcc" "src/theory/CMakeFiles/soda_theory.dir/offline_optimal.cpp.o.d"
  "/root/repo/src/theory/perturbation.cpp" "src/theory/CMakeFiles/soda_theory.dir/perturbation.cpp.o" "gcc" "src/theory/CMakeFiles/soda_theory.dir/perturbation.cpp.o.d"
  "/root/repo/src/theory/rollout.cpp" "src/theory/CMakeFiles/soda_theory.dir/rollout.cpp.o" "gcc" "src/theory/CMakeFiles/soda_theory.dir/rollout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/soda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/soda_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
