file(REMOVE_RECURSE
  "libsoda_theory.a"
)
