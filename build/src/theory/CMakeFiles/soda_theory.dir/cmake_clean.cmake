file(REMOVE_RECURSE
  "CMakeFiles/soda_theory.dir/constants.cpp.o"
  "CMakeFiles/soda_theory.dir/constants.cpp.o.d"
  "CMakeFiles/soda_theory.dir/monotone_check.cpp.o"
  "CMakeFiles/soda_theory.dir/monotone_check.cpp.o.d"
  "CMakeFiles/soda_theory.dir/offline_optimal.cpp.o"
  "CMakeFiles/soda_theory.dir/offline_optimal.cpp.o.d"
  "CMakeFiles/soda_theory.dir/perturbation.cpp.o"
  "CMakeFiles/soda_theory.dir/perturbation.cpp.o.d"
  "CMakeFiles/soda_theory.dir/rollout.cpp.o"
  "CMakeFiles/soda_theory.dir/rollout.cpp.o.d"
  "libsoda_theory.a"
  "libsoda_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
