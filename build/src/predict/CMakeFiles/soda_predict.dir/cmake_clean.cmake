file(REMOVE_RECURSE
  "CMakeFiles/soda_predict.dir/ema.cpp.o"
  "CMakeFiles/soda_predict.dir/ema.cpp.o.d"
  "CMakeFiles/soda_predict.dir/harmonic_mean.cpp.o"
  "CMakeFiles/soda_predict.dir/harmonic_mean.cpp.o.d"
  "CMakeFiles/soda_predict.dir/markov.cpp.o"
  "CMakeFiles/soda_predict.dir/markov.cpp.o.d"
  "CMakeFiles/soda_predict.dir/moving_average.cpp.o"
  "CMakeFiles/soda_predict.dir/moving_average.cpp.o.d"
  "CMakeFiles/soda_predict.dir/oracle.cpp.o"
  "CMakeFiles/soda_predict.dir/oracle.cpp.o.d"
  "CMakeFiles/soda_predict.dir/predictor.cpp.o"
  "CMakeFiles/soda_predict.dir/predictor.cpp.o.d"
  "CMakeFiles/soda_predict.dir/profiler.cpp.o"
  "CMakeFiles/soda_predict.dir/profiler.cpp.o.d"
  "CMakeFiles/soda_predict.dir/quantile.cpp.o"
  "CMakeFiles/soda_predict.dir/quantile.cpp.o.d"
  "CMakeFiles/soda_predict.dir/robust_discount.cpp.o"
  "CMakeFiles/soda_predict.dir/robust_discount.cpp.o.d"
  "CMakeFiles/soda_predict.dir/sliding_window.cpp.o"
  "CMakeFiles/soda_predict.dir/sliding_window.cpp.o.d"
  "libsoda_predict.a"
  "libsoda_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
