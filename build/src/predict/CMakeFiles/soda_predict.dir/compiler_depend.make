# Empty compiler generated dependencies file for soda_predict.
# This may be replaced when dependencies are built.
