file(REMOVE_RECURSE
  "libsoda_predict.a"
)
