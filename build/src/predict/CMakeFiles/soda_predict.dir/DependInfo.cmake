
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/ema.cpp" "src/predict/CMakeFiles/soda_predict.dir/ema.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/ema.cpp.o.d"
  "/root/repo/src/predict/harmonic_mean.cpp" "src/predict/CMakeFiles/soda_predict.dir/harmonic_mean.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/harmonic_mean.cpp.o.d"
  "/root/repo/src/predict/markov.cpp" "src/predict/CMakeFiles/soda_predict.dir/markov.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/markov.cpp.o.d"
  "/root/repo/src/predict/moving_average.cpp" "src/predict/CMakeFiles/soda_predict.dir/moving_average.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/moving_average.cpp.o.d"
  "/root/repo/src/predict/oracle.cpp" "src/predict/CMakeFiles/soda_predict.dir/oracle.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/oracle.cpp.o.d"
  "/root/repo/src/predict/predictor.cpp" "src/predict/CMakeFiles/soda_predict.dir/predictor.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/predictor.cpp.o.d"
  "/root/repo/src/predict/profiler.cpp" "src/predict/CMakeFiles/soda_predict.dir/profiler.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/profiler.cpp.o.d"
  "/root/repo/src/predict/quantile.cpp" "src/predict/CMakeFiles/soda_predict.dir/quantile.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/quantile.cpp.o.d"
  "/root/repo/src/predict/robust_discount.cpp" "src/predict/CMakeFiles/soda_predict.dir/robust_discount.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/robust_discount.cpp.o.d"
  "/root/repo/src/predict/sliding_window.cpp" "src/predict/CMakeFiles/soda_predict.dir/sliding_window.cpp.o" "gcc" "src/predict/CMakeFiles/soda_predict.dir/sliding_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
