
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/soda_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/soda_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/decision_map.cpp" "src/core/CMakeFiles/soda_core.dir/decision_map.cpp.o" "gcc" "src/core/CMakeFiles/soda_core.dir/decision_map.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/soda_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/soda_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/soda_controller.cpp" "src/core/CMakeFiles/soda_core.dir/soda_controller.cpp.o" "gcc" "src/core/CMakeFiles/soda_core.dir/soda_controller.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/soda_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/soda_core.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/soda_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
