file(REMOVE_RECURSE
  "CMakeFiles/soda_core.dir/cost_model.cpp.o"
  "CMakeFiles/soda_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/soda_core.dir/decision_map.cpp.o"
  "CMakeFiles/soda_core.dir/decision_map.cpp.o.d"
  "CMakeFiles/soda_core.dir/registry.cpp.o"
  "CMakeFiles/soda_core.dir/registry.cpp.o.d"
  "CMakeFiles/soda_core.dir/soda_controller.cpp.o"
  "CMakeFiles/soda_core.dir/soda_controller.cpp.o.d"
  "CMakeFiles/soda_core.dir/solver.cpp.o"
  "CMakeFiles/soda_core.dir/solver.cpp.o.d"
  "libsoda_core.a"
  "libsoda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
