# Empty dependencies file for soda_core.
# This may be replaced when dependencies are built.
