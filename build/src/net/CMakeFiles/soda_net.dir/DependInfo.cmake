
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dataset.cpp" "src/net/CMakeFiles/soda_net.dir/dataset.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/dataset.cpp.o.d"
  "/root/repo/src/net/generators.cpp" "src/net/CMakeFiles/soda_net.dir/generators.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/generators.cpp.o.d"
  "/root/repo/src/net/mahimahi.cpp" "src/net/CMakeFiles/soda_net.dir/mahimahi.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/mahimahi.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/soda_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/trace.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/net/CMakeFiles/soda_net.dir/trace_io.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/trace_io.cpp.o.d"
  "/root/repo/src/net/trace_stats.cpp" "src/net/CMakeFiles/soda_net.dir/trace_stats.cpp.o" "gcc" "src/net/CMakeFiles/soda_net.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
