# Empty dependencies file for soda_net.
# This may be replaced when dependencies are built.
