file(REMOVE_RECURSE
  "libsoda_net.a"
)
