file(REMOVE_RECURSE
  "CMakeFiles/soda_net.dir/dataset.cpp.o"
  "CMakeFiles/soda_net.dir/dataset.cpp.o.d"
  "CMakeFiles/soda_net.dir/generators.cpp.o"
  "CMakeFiles/soda_net.dir/generators.cpp.o.d"
  "CMakeFiles/soda_net.dir/mahimahi.cpp.o"
  "CMakeFiles/soda_net.dir/mahimahi.cpp.o.d"
  "CMakeFiles/soda_net.dir/trace.cpp.o"
  "CMakeFiles/soda_net.dir/trace.cpp.o.d"
  "CMakeFiles/soda_net.dir/trace_io.cpp.o"
  "CMakeFiles/soda_net.dir/trace_io.cpp.o.d"
  "CMakeFiles/soda_net.dir/trace_stats.cpp.o"
  "CMakeFiles/soda_net.dir/trace_stats.cpp.o.d"
  "libsoda_net.a"
  "libsoda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
