file(REMOVE_RECURSE
  "CMakeFiles/soda_media.dir/bitrate_ladder.cpp.o"
  "CMakeFiles/soda_media.dir/bitrate_ladder.cpp.o.d"
  "CMakeFiles/soda_media.dir/quality.cpp.o"
  "CMakeFiles/soda_media.dir/quality.cpp.o.d"
  "CMakeFiles/soda_media.dir/video_model.cpp.o"
  "CMakeFiles/soda_media.dir/video_model.cpp.o.d"
  "libsoda_media.a"
  "libsoda_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
