# Empty compiler generated dependencies file for soda_media.
# This may be replaced when dependencies are built.
