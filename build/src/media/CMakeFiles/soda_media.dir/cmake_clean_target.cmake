file(REMOVE_RECURSE
  "libsoda_media.a"
)
