file(REMOVE_RECURSE
  "CMakeFiles/soda_sim.dir/session.cpp.o"
  "CMakeFiles/soda_sim.dir/session.cpp.o.d"
  "CMakeFiles/soda_sim.dir/session_log.cpp.o"
  "CMakeFiles/soda_sim.dir/session_log.cpp.o.d"
  "CMakeFiles/soda_sim.dir/shared_link.cpp.o"
  "CMakeFiles/soda_sim.dir/shared_link.cpp.o.d"
  "libsoda_sim.a"
  "libsoda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
