
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/session.cpp" "src/sim/CMakeFiles/soda_sim.dir/session.cpp.o" "gcc" "src/sim/CMakeFiles/soda_sim.dir/session.cpp.o.d"
  "/root/repo/src/sim/session_log.cpp" "src/sim/CMakeFiles/soda_sim.dir/session_log.cpp.o" "gcc" "src/sim/CMakeFiles/soda_sim.dir/session_log.cpp.o.d"
  "/root/repo/src/sim/shared_link.cpp" "src/sim/CMakeFiles/soda_sim.dir/shared_link.cpp.o" "gcc" "src/sim/CMakeFiles/soda_sim.dir/shared_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/soda_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
