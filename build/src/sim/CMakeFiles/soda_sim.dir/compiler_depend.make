# Empty compiler generated dependencies file for soda_sim.
# This may be replaced when dependencies are built.
