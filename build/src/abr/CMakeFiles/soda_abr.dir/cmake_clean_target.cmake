file(REMOVE_RECURSE
  "libsoda_abr.a"
)
