file(REMOVE_RECURSE
  "CMakeFiles/soda_abr.dir/bba.cpp.o"
  "CMakeFiles/soda_abr.dir/bba.cpp.o.d"
  "CMakeFiles/soda_abr.dir/bola.cpp.o"
  "CMakeFiles/soda_abr.dir/bola.cpp.o.d"
  "CMakeFiles/soda_abr.dir/controller.cpp.o"
  "CMakeFiles/soda_abr.dir/controller.cpp.o.d"
  "CMakeFiles/soda_abr.dir/dynamic.cpp.o"
  "CMakeFiles/soda_abr.dir/dynamic.cpp.o.d"
  "CMakeFiles/soda_abr.dir/hyb.cpp.o"
  "CMakeFiles/soda_abr.dir/hyb.cpp.o.d"
  "CMakeFiles/soda_abr.dir/mpc.cpp.o"
  "CMakeFiles/soda_abr.dir/mpc.cpp.o.d"
  "CMakeFiles/soda_abr.dir/production_baseline.cpp.o"
  "CMakeFiles/soda_abr.dir/production_baseline.cpp.o.d"
  "CMakeFiles/soda_abr.dir/rl_like.cpp.o"
  "CMakeFiles/soda_abr.dir/rl_like.cpp.o.d"
  "CMakeFiles/soda_abr.dir/throughput_rule.cpp.o"
  "CMakeFiles/soda_abr.dir/throughput_rule.cpp.o.d"
  "libsoda_abr.a"
  "libsoda_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
