
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/bba.cpp" "src/abr/CMakeFiles/soda_abr.dir/bba.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/bba.cpp.o.d"
  "/root/repo/src/abr/bola.cpp" "src/abr/CMakeFiles/soda_abr.dir/bola.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/bola.cpp.o.d"
  "/root/repo/src/abr/controller.cpp" "src/abr/CMakeFiles/soda_abr.dir/controller.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/controller.cpp.o.d"
  "/root/repo/src/abr/dynamic.cpp" "src/abr/CMakeFiles/soda_abr.dir/dynamic.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/dynamic.cpp.o.d"
  "/root/repo/src/abr/hyb.cpp" "src/abr/CMakeFiles/soda_abr.dir/hyb.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/hyb.cpp.o.d"
  "/root/repo/src/abr/mpc.cpp" "src/abr/CMakeFiles/soda_abr.dir/mpc.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/mpc.cpp.o.d"
  "/root/repo/src/abr/production_baseline.cpp" "src/abr/CMakeFiles/soda_abr.dir/production_baseline.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/production_baseline.cpp.o.d"
  "/root/repo/src/abr/rl_like.cpp" "src/abr/CMakeFiles/soda_abr.dir/rl_like.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/rl_like.cpp.o.d"
  "/root/repo/src/abr/throughput_rule.cpp" "src/abr/CMakeFiles/soda_abr.dir/throughput_rule.cpp.o" "gcc" "src/abr/CMakeFiles/soda_abr.dir/throughput_rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
