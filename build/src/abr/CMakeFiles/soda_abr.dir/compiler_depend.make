# Empty compiler generated dependencies file for soda_abr.
# This may be replaced when dependencies are built.
