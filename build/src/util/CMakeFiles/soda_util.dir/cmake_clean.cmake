file(REMOVE_RECURSE
  "CMakeFiles/soda_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/soda_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/soda_util.dir/csv.cpp.o"
  "CMakeFiles/soda_util.dir/csv.cpp.o.d"
  "CMakeFiles/soda_util.dir/stats.cpp.o"
  "CMakeFiles/soda_util.dir/stats.cpp.o.d"
  "CMakeFiles/soda_util.dir/table.cpp.o"
  "CMakeFiles/soda_util.dir/table.cpp.o.d"
  "libsoda_util.a"
  "libsoda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
