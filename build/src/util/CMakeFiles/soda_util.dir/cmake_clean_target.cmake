file(REMOVE_RECURSE
  "libsoda_util.a"
)
