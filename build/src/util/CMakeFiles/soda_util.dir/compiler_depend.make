# Empty compiler generated dependencies file for soda_util.
# This may be replaced when dependencies are built.
