# Empty dependencies file for soda_qoe.
# This may be replaced when dependencies are built.
