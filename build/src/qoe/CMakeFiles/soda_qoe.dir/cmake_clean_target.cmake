file(REMOVE_RECURSE
  "libsoda_qoe.a"
)
