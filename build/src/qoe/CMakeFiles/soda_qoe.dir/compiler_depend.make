# Empty compiler generated dependencies file for soda_qoe.
# This may be replaced when dependencies are built.
