file(REMOVE_RECURSE
  "CMakeFiles/soda_qoe.dir/eval.cpp.o"
  "CMakeFiles/soda_qoe.dir/eval.cpp.o.d"
  "CMakeFiles/soda_qoe.dir/metrics.cpp.o"
  "CMakeFiles/soda_qoe.dir/metrics.cpp.o.d"
  "CMakeFiles/soda_qoe.dir/report.cpp.o"
  "CMakeFiles/soda_qoe.dir/report.cpp.o.d"
  "libsoda_qoe.a"
  "libsoda_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
