file(REMOVE_RECURSE
  "libsoda_user.a"
)
