# Empty dependencies file for soda_user.
# This may be replaced when dependencies are built.
