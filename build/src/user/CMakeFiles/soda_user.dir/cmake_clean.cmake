file(REMOVE_RECURSE
  "CMakeFiles/soda_user.dir/engagement.cpp.o"
  "CMakeFiles/soda_user.dir/engagement.cpp.o.d"
  "libsoda_user.a"
  "libsoda_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
