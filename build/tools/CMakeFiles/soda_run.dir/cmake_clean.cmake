file(REMOVE_RECURSE
  "CMakeFiles/soda_run.dir/soda_run.cpp.o"
  "CMakeFiles/soda_run.dir/soda_run.cpp.o.d"
  "soda_run"
  "soda_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
