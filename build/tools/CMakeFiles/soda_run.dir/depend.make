# Empty dependencies file for soda_run.
# This may be replaced when dependencies are built.
