file(REMOVE_RECURSE
  "CMakeFiles/soda_traces.dir/soda_traces.cpp.o"
  "CMakeFiles/soda_traces.dir/soda_traces.cpp.o.d"
  "soda_traces"
  "soda_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
