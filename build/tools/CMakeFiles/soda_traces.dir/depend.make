# Empty dependencies file for soda_traces.
# This may be replaced when dependencies are built.
