
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abr_baselines_test.cpp" "tests/CMakeFiles/soda_tests.dir/abr_baselines_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/abr_baselines_test.cpp.o.d"
  "/root/repo/tests/abr_bba_test.cpp" "tests/CMakeFiles/soda_tests.dir/abr_bba_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/abr_bba_test.cpp.o.d"
  "/root/repo/tests/core_controller_test.cpp" "tests/CMakeFiles/soda_tests.dir/core_controller_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/core_controller_test.cpp.o.d"
  "/root/repo/tests/core_cost_model_test.cpp" "tests/CMakeFiles/soda_tests.dir/core_cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/core_cost_model_test.cpp.o.d"
  "/root/repo/tests/core_registry_test.cpp" "tests/CMakeFiles/soda_tests.dir/core_registry_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/core_registry_test.cpp.o.d"
  "/root/repo/tests/core_solver_test.cpp" "tests/CMakeFiles/soda_tests.dir/core_solver_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/core_solver_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/soda_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/media_test.cpp" "tests/CMakeFiles/soda_tests.dir/media_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/media_test.cpp.o.d"
  "/root/repo/tests/net_dataset_test.cpp" "tests/CMakeFiles/soda_tests.dir/net_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/net_dataset_test.cpp.o.d"
  "/root/repo/tests/net_generators_test.cpp" "tests/CMakeFiles/soda_tests.dir/net_generators_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/net_generators_test.cpp.o.d"
  "/root/repo/tests/net_io_stats_test.cpp" "tests/CMakeFiles/soda_tests.dir/net_io_stats_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/net_io_stats_test.cpp.o.d"
  "/root/repo/tests/net_mahimahi_test.cpp" "tests/CMakeFiles/soda_tests.dir/net_mahimahi_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/net_mahimahi_test.cpp.o.d"
  "/root/repo/tests/net_trace_test.cpp" "tests/CMakeFiles/soda_tests.dir/net_trace_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/net_trace_test.cpp.o.d"
  "/root/repo/tests/predict_markov_quantile_test.cpp" "tests/CMakeFiles/soda_tests.dir/predict_markov_quantile_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/predict_markov_quantile_test.cpp.o.d"
  "/root/repo/tests/predict_test.cpp" "tests/CMakeFiles/soda_tests.dir/predict_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/predict_test.cpp.o.d"
  "/root/repo/tests/qoe_report_test.cpp" "tests/CMakeFiles/soda_tests.dir/qoe_report_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/qoe_report_test.cpp.o.d"
  "/root/repo/tests/qoe_test.cpp" "tests/CMakeFiles/soda_tests.dir/qoe_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/qoe_test.cpp.o.d"
  "/root/repo/tests/sim_abandonment_test.cpp" "tests/CMakeFiles/soda_tests.dir/sim_abandonment_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/sim_abandonment_test.cpp.o.d"
  "/root/repo/tests/sim_property_test.cpp" "tests/CMakeFiles/soda_tests.dir/sim_property_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/sim_property_test.cpp.o.d"
  "/root/repo/tests/sim_session_test.cpp" "tests/CMakeFiles/soda_tests.dir/sim_session_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/sim_session_test.cpp.o.d"
  "/root/repo/tests/sim_shared_link_test.cpp" "tests/CMakeFiles/soda_tests.dir/sim_shared_link_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/sim_shared_link_test.cpp.o.d"
  "/root/repo/tests/theory_constants_test.cpp" "tests/CMakeFiles/soda_tests.dir/theory_constants_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/theory_constants_test.cpp.o.d"
  "/root/repo/tests/theory_test.cpp" "tests/CMakeFiles/soda_tests.dir/theory_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/theory_test.cpp.o.d"
  "/root/repo/tests/tools_cli_test.cpp" "tests/CMakeFiles/soda_tests.dir/tools_cli_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/tools_cli_test.cpp.o.d"
  "/root/repo/tests/user_engagement_test.cpp" "tests/CMakeFiles/soda_tests.dir/user_engagement_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/user_engagement_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/soda_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/soda_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/soda_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/soda_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/soda_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/soda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/soda_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/user/CMakeFiles/soda_user.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/soda_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/soda_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/soda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/soda_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/soda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
