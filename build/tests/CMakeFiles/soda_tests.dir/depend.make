# Empty dependencies file for soda_tests.
# This may be replaced when dependencies are built.
