// Load generator for the decision-serving daemon.
//
// Replays the evaluation corpus (synthetic Puffer sessions; see
// net/dataset.hpp) as a concurrent request stream against
// serve::DecisionService: every replay step ingests each session's feedback
// events (startup, segment-downloaded, rebuffer) and then resolves one
// decision batch across all sessions, with per-session buffer dynamics
// driven by the decided rung and the session's trace throughput. The decide
// path — the daemon's hot path — is timed separately from event ingest, and
// the tool reports decisions/sec, p50/p99 batch latency (via
// obs::HistogramSnapshot::Quantile) and the shadow-check mismatch rate.
//
//   serve_loadgen [--sessions N] [--steps N] [--threads N] [--seed S]
//                 [--shadow F] [--exact] [--json PATH] [--metrics PATH]
//
// --exact serves the exact table instead of the quantized one (for A/B).
// --json writes a machine-readable summary; --metrics dumps the full
// "serve.*" metrics registry snapshot (the CI artifact).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "media/bitrate_ladder.hpp"
#include "net/dataset.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "serve/decision_service.hpp"
#include "tools/cli_args.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace {

using namespace soda;

struct Replay {
  explicit Replay(net::ThroughputTrace t) : trace(std::move(t)) {}
  net::ThroughputTrace trace;
  std::string id;
  double clock_s = 0.0;
  double buffer_s = 0.0;
  media::Rung rung = 0;
};

}  // namespace

int main(int argc, char** argv) {
  tools::CliArgs args(
      argc, argv,
      {"sessions", "steps", "threads", "seed", "shadow", "json", "metrics"},
      {"exact"});

  const std::size_t sessions =
      static_cast<std::size_t>(args.GetLong("sessions", 120));
  const int steps = static_cast<int>(args.GetLong("steps", 300));
  const int threads = static_cast<int>(args.GetLong("threads", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetLong("seed", 20240804));
  const double shadow = args.GetDouble("shadow", 1.0 / 64.0);
  const bool quantized = !args.Has("exact");

  const media::BitrateLadder ladder = media::YoutubeHfr4kLadder();
  const double segment_s = 2.0;
  const double max_buffer_s = 20.0;

  serve::ServeConfig service_config;
  service_config.base_seed = seed;
  service_config.shadow_check_fraction = shadow;
  serve::DecisionService service(service_config);

  serve::TenantConfig tenant_config(ladder);
  tenant_config.segment_seconds = segment_s;
  tenant_config.max_buffer_s = max_buffer_s;
  tenant_config.quantized = quantized;
  const serve::TenantId tenant = service.RegisterTenant(tenant_config);

  // The corpus: one emulated Puffer session per client.
  soda::Rng rng(seed);
  const net::DatasetEmulator emulator(net::DatasetKind::kPuffer);
  std::vector<Replay> replays;
  replays.reserve(sessions);
  {
    std::vector<net::ThroughputTrace> traces =
        emulator.MakeSessions(sessions, rng);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      Replay r(std::move(traces[i]));
      r.id = "sess-" + std::to_string(i);
      replays.push_back(std::move(r));
    }
  }
  for (const Replay& r : replays) {
    serve::SessionEvent start;
    start.type = serve::EventType::kStartup;
    start.tenant = tenant;
    start.session_id = r.id;
    service.Ingest(start);
  }

  std::vector<serve::DecisionRequest> requests(replays.size());
  std::vector<serve::Decision> decisions(replays.size());
  std::vector<serve::SessionEvent> events;
  events.reserve(replays.size() * 2);

  std::uint64_t total_decisions = 0;
  double decide_seconds = 0.0;
  using Clock = std::chrono::steady_clock;

  for (int step = 0; step < steps; ++step) {
    // Decide one rung per session, timing only the daemon's hot path.
    for (std::size_t i = 0; i < replays.size(); ++i) {
      requests[i].tenant = tenant;
      requests[i].session_id = replays[i].id;
      requests[i].buffer_s = replays[i].buffer_s;
    }
    const Clock::time_point t0 = Clock::now();
    service.DecideBatch(requests, decisions, threads);
    decide_seconds += std::chrono::duration<double>(Clock::now() - t0).count();
    total_decisions += requests.size();

    // Advance each session's playback and fold the feedback back in.
    events.clear();
    for (std::size_t i = 0; i < replays.size(); ++i) {
      Replay& r = replays[i];
      r.rung = decisions[i].rung;
      const double megabits = ladder.BitrateMbps(r.rung) * segment_s;
      const double mbps = r.trace.ThroughputAt(r.clock_s);
      const double download_s = mbps > 0.0 ? megabits / mbps : segment_s * 4.0;

      serve::SessionEvent down;
      down.type = serve::EventType::kSegmentDownloaded;
      down.tenant = tenant;
      down.session_id = r.id;
      down.rung = r.rung;
      down.duration_s = download_s;
      down.megabits = megabits;
      events.push_back(down);

      const double stall = download_s > r.buffer_s ? download_s - r.buffer_s : 0.0;
      if (stall > 0.0) {
        serve::SessionEvent rebuffer;
        rebuffer.type = serve::EventType::kRebuffer;
        rebuffer.tenant = tenant;
        rebuffer.session_id = r.id;
        rebuffer.duration_s = stall;
        events.push_back(rebuffer);
      }
      r.buffer_s = std::max(r.buffer_s - download_s, 0.0) + segment_s;
      if (r.buffer_s > max_buffer_s) r.buffer_s = max_buffer_s;
      r.clock_s += download_s + stall;
      if (r.clock_s > r.trace.DurationS()) r.clock_s = 0.0;  // loop the trace
    }
    service.IngestBatch(events);
  }

  const double decisions_per_sec =
      decide_seconds > 0.0 ? static_cast<double>(total_decisions) / decide_seconds
                           : 0.0;
  obs::MetricsRegistry::Global()
      .GetGauge("serve.decisions_per_sec")
      .Set(decisions_per_sec);

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const auto counter = [&](const char* name) {
    return tools::SnapshotCounter(snapshot, name);
  };
  const std::uint64_t shadow_checks = counter("serve.shadow_checks");
  const std::uint64_t shadow_mismatches = counter("serve.shadow_mismatches");
  const double mismatch_rate =
      shadow_checks > 0
          ? static_cast<double>(shadow_mismatches) / static_cast<double>(shadow_checks)
          : 0.0;
  double batch_p50 = 0.0, batch_p99 = 0.0;
  if (const auto it = snapshot.histograms.find("serve.batch_us");
      it != snapshot.histograms.end()) {
    batch_p50 = it->second.Quantile(0.50);
    batch_p99 = it->second.Quantile(0.99);
  }

  std::printf("serve_loadgen: table=%s sessions=%zu steps=%d threads=%d\n",
              quantized ? "quantized" : "exact", replays.size(), steps, threads);
  std::printf("  decisions            %llu\n",
              static_cast<unsigned long long>(total_decisions));
  std::printf("  decisions/sec        %.3g\n", decisions_per_sec);
  std::printf("  batch latency p50    %.1f us\n", batch_p50);
  std::printf("  batch latency p99    %.1f us\n", batch_p99);
  std::printf("  table hits           %llu\n",
              static_cast<unsigned long long>(counter("serve.table_hits")));
  std::printf("  solver fallbacks     %llu\n",
              static_cast<unsigned long long>(counter("serve.fallbacks")));
  std::printf("  shadow checks        %llu (mismatch rate %.2g)\n",
              static_cast<unsigned long long>(shadow_checks), mismatch_rate);

  tools::WriteJsonIfRequested(args, [&](util::JsonWriter& json) {
    json.Key("table").String(quantized ? "quantized" : "exact");
    json.Key("sessions").Int(static_cast<std::int64_t>(replays.size()));
    json.Key("steps").Int(steps);
    json.Key("threads").Int(threads);
    json.Key("decisions").Int(static_cast<std::int64_t>(total_decisions));
    json.Key("decisions_per_sec").Number(decisions_per_sec);
    json.Key("batch_us_p50").Number(batch_p50);
    json.Key("batch_us_p99").Number(batch_p99);
    json.Key("table_hits").Int(static_cast<std::int64_t>(counter("serve.table_hits")));
    json.Key("fallbacks").Int(static_cast<std::int64_t>(counter("serve.fallbacks")));
    json.Key("shadow_checks").Int(static_cast<std::int64_t>(shadow_checks));
    json.Key("shadow_mismatches").Int(static_cast<std::int64_t>(shadow_mismatches));
    json.Key("shadow_mismatch_rate").Number(mismatch_rate);
  });
  tools::DumpMetricsIfRequested(args);
  return 0;
}
