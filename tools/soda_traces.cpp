// soda_traces — generate and inspect throughput traces.
//
// Examples:
//   soda_traces --generate 4g --count 50 --out traces/      # CSV sessions
//   soda_traces --generate puffer --count 5 --out traces/ --format mahimahi
//   soda_traces --inspect traces/4g_000.csv
//
// Flags:
//   --generate NAME   puffer | 5g | 4g
//   --count N         sessions to generate (default 10)
//   --out DIR         output directory (created if needed)
//   --format F        csv (default) | mahimahi
//   --seed N          generator seed (default 1)
//   --inspect PATH    print statistics of a CSV trace
#include <cstdio>
#include <filesystem>

#include "net/dataset.hpp"
#include "net/mahimahi.hpp"
#include "net/trace_io.hpp"
#include "net/trace_stats.hpp"
#include "tools/cli_args.hpp"
#include "util/table.hpp"

namespace soda {
namespace {

int Run(int argc, char** argv) {
  const tools::CliArgs args(
      argc, argv, {"generate", "count", "out", "format", "seed", "inspect"},
      {});

  if (args.Has("inspect")) {
    const net::ThroughputTrace trace =
        net::LoadTraceCsv(args.Get("inspect", ""));
    const net::TraceStats stats = net::ComputeTraceStats(trace);
    std::printf("duration      : %.1f s\n", trace.DurationS());
    std::printf("mean          : %.2f Mb/s\n", stats.mean_mbps);
    std::printf("rel std dev   : %.1f%%\n", stats.rel_std * 100.0);
    std::printf("min / max     : %.2f / %.2f Mb/s\n", stats.min_mbps,
                stats.max_mbps);
    std::printf("p5 / p95      : %.2f / %.2f Mb/s\n", stats.p5_mbps,
                stats.p95_mbps);
    return 0;
  }

  SODA_ENSURE(args.Has("generate"), "need --generate NAME or --inspect PATH");
  const std::string name = args.Get("generate", "");
  net::DatasetKind kind = net::DatasetKind::kPuffer;
  if (name == "5g") kind = net::DatasetKind::k5G;
  else if (name == "4g") kind = net::DatasetKind::k4G;
  else SODA_ENSURE(name == "puffer",
                   "unknown dataset '" + name + "'; valid: puffer, 5g, 4g");

  const std::filesystem::path out_dir = args.Get("out", "traces");
  std::filesystem::create_directories(out_dir);
  const std::string format = args.Get("format", "csv");
  SODA_ENSURE(format == "csv" || format == "mahimahi",
              "unknown format '" + format + "'; valid: csv, mahimahi");

  Rng rng(static_cast<std::uint64_t>(args.GetLong("seed", 1)));
  const net::DatasetEmulator emulator(kind);
  const auto count = static_cast<std::size_t>(args.GetLong("count", 10));
  for (std::size_t i = 0; i < count; ++i) {
    const net::ThroughputTrace session = emulator.MakeSession(rng);
    char filename[64];
    std::snprintf(filename, sizeof(filename), "%s_%03zu.%s", name.c_str(), i,
                  format == "csv" ? "csv" : "mahi");
    const std::filesystem::path path = out_dir / filename;
    if (format == "csv") {
      net::SaveTraceCsv(session, path);
    } else {
      net::SaveMahimahiFile(session, path);
    }
  }
  std::printf("wrote %zu %s sessions to %s (%s)\n", count, name.c_str(),
              out_dir.string().c_str(), format.c_str());
  return 0;
}

}  // namespace
}  // namespace soda

int main(int argc, char** argv) {
  try {
    return soda::Run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "soda_traces: %s\n", error.what());
    return 1;
  }
}
