// Load generator / scaling driver for the open-loop fleet simulator.
//
// Runs fleet::RunFleet at a configurable population and thread count and
// reports steady-state decision throughput, peak concurrency and the fleet
// QoE aggregates. With --check-threads N the same configuration is re-run
// at N threads and the two summaries are compared bitwise — the CI
// fleet-smoke job gates on `identical` staying true, which is the fleet's
// determinism contract (results are a pure function of the config, never of
// the thread count).
//
//   fleet_loadgen [--users N] [--horizon S] [--threads N] [--shards N]
//                 [--seed S] [--segment S] [--check-threads N]
//                 [--fleet-regions N] [--region-mbps C] [--region-diurnal A]
//                 [--json PATH] [--metrics PATH] [--quick]
//
// --fleet-regions N turns on closed-loop capacity coupling: users map to N
// regional pools of --region-mbps Mbps each (optionally modulated by
// --region-diurnal amplitude), which congest as the fleet grows; 0
// (default) is the open-loop fleet. With --threads > 1 the tool also runs
// a timed single-thread reference (reusing the --check-threads 1 rerun
// when that is requested) and prints the decisions/sec scaling line:
// speedup and parallel efficiency vs one thread. --json writes a
// machine-readable summary; --metrics dumps the full "fleet.*" metrics
// registry snapshot (the CI artifact).
#include <chrono>
#include <cstdio>
#include <string>

#include "fleet/fleet.hpp"
#include "tools/cli_args.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace soda;

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  tools::CliArgs args(argc, argv,
                      {"users", "horizon", "threads", "shards", "seed",
                       "segment", "check-threads", "fleet-regions",
                       "region-mbps", "region-diurnal", "json", "metrics"},
                      {"quick"});

  const bool quick = args.Has("quick");
  fleet::FleetConfig config;
  config.users =
      static_cast<std::uint64_t>(args.GetLong("users", quick ? 10000 : 200000));
  config.arrival.horizon_s = args.GetDouble("horizon", quick ? 300.0 : 600.0);
  config.shards = static_cast<int>(args.GetLong("shards", 64));
  config.base_seed = static_cast<std::uint64_t>(args.GetLong("seed", 1));
  config.segment_seconds = args.GetDouble("segment", 2.0);
  const int regions = static_cast<int>(args.GetLong("fleet-regions", 0));
  if (regions > 0) {
    config.regions = fleet::MakeUniformRegions(
        regions, args.GetDouble("region-mbps", 2000.0),
        args.GetDouble("region-diurnal", 0.0));
  }
  const int threads = static_cast<int>(args.GetLong("threads", 1));
  const int check_threads = static_cast<int>(args.GetLong("check-threads", 0));

  const auto start = std::chrono::steady_clock::now();
  const fleet::FleetSummary summary = fleet::RunFleet(config, threads);
  const double wall_s = Seconds(start, std::chrono::steady_clock::now());
  const double decisions_per_sec =
      wall_s > 0.0 ? static_cast<double>(summary.decisions) / wall_s : 0.0;

  bool identical = true;
  double check_rate = 0.0;
  if (check_threads > 0) {
    const auto check_start = std::chrono::steady_clock::now();
    const fleet::FleetSummary check = fleet::RunFleet(config, check_threads);
    const double check_wall_s =
        Seconds(check_start, std::chrono::steady_clock::now());
    identical = check == summary;
    check_rate = check_wall_s > 0.0
                     ? static_cast<double>(check.decisions) / check_wall_s
                     : 0.0;
  }

  // Thread-scaling report: with --threads > 1 the single-thread rate comes
  // from the --check-threads 1 rerun when available, otherwise from a
  // dedicated reference run (results are bitwise identical either way —
  // the fleet determinism contract — so only the timing differs).
  double single_rate = 0.0;
  if (threads > 1) {
    if (check_threads == 1) {
      single_rate = check_rate;
    } else {
      const auto ref_start = std::chrono::steady_clock::now();
      const fleet::FleetSummary ref = fleet::RunFleet(config, 1);
      const double ref_wall_s =
          Seconds(ref_start, std::chrono::steady_clock::now());
      identical = identical && ref == summary;
      single_rate = ref_wall_s > 0.0
                        ? static_cast<double>(ref.decisions) / ref_wall_s
                        : 0.0;
    }
  }

  std::printf(
      "fleet: users=%llu started=%llu ended=%llu peak_live=%llu "
      "decisions=%llu (%.0f/s, wall %.2fs)\n",
      static_cast<unsigned long long>(summary.users),
      static_cast<unsigned long long>(summary.sessions_started),
      static_cast<unsigned long long>(summary.sessions_ended),
      static_cast<unsigned long long>(summary.peak_live),
      static_cast<unsigned long long>(summary.decisions), decisions_per_sec,
      wall_s);
  std::printf(
      "      qoe=%.4f utility=%.4f rebuffer=%.5f switches=%.4f "
      "slo_violation=%.4f live_state=%.1f MB arena=%.1f MB\n",
      summary.MeanQoe(), summary.MeanUtility(), summary.MeanRebufferRatio(),
      summary.MeanSwitchRate(), summary.SloViolationFraction(),
      static_cast<double>(summary.live_state_bytes) / 1e6,
      static_cast<double>(summary.arena_bytes) / 1e6);
  for (const fleet::RegionStats& region : summary.regions) {
    std::printf(
        "      region %-8s peak_live=%llu ended=%llu qoe=%.4f abandon=%.4f "
        "util=%.3f mult=%.3f congested_ticks=%lld/%lld\n",
        region.name.c_str(), static_cast<unsigned long long>(region.peak_live),
        static_cast<unsigned long long>(region.sessions_ended),
        region.MeanQoe(), region.AbandonFraction(),
        region.MeanUtilization(summary.ticks),
        region.MeanMultiplier(summary.ticks),
        static_cast<long long>(region.congested_ticks),
        static_cast<long long>(summary.ticks));
  }
  if (check_threads > 0) {
    std::printf("      threads %d vs %d bitwise identical: %s (%.0f vs %.0f "
                "decisions/s)\n",
                threads, check_threads, identical ? "yes" : "NO",
                decisions_per_sec, check_rate);
  }
  if (threads > 1 && single_rate > 0.0) {
    const double speedup = decisions_per_sec / single_rate;
    std::printf(
        "      scaling: %d threads %.0f decisions/s vs 1 thread %.0f "
        "(speedup %.2fx, parallel efficiency %.0f%%)\n",
        threads, decisions_per_sec, single_rate, speedup,
        100.0 * speedup / static_cast<double>(threads));
  }

  tools::WriteJsonIfRequested(args, [&](util::JsonWriter& json) {
    json.Key("users").Int(static_cast<std::int64_t>(summary.users));
    json.Key("ticks").Int(summary.ticks);
    json.Key("threads").Int(threads);
    json.Key("shards").Int(config.shards);
    json.Key("sessions_started")
        .Int(static_cast<std::int64_t>(summary.sessions_started));
    json.Key("sessions_ended")
        .Int(static_cast<std::int64_t>(summary.sessions_ended));
    json.Key("sessions_completed")
        .Int(static_cast<std::int64_t>(summary.sessions_completed));
    json.Key("sessions_abandoned")
        .Int(static_cast<std::int64_t>(summary.sessions_abandoned));
    json.Key("rejoins").Int(static_cast<std::int64_t>(summary.rejoins));
    json.Key("decisions").Int(static_cast<std::int64_t>(summary.decisions));
    json.Key("clamped_lookups")
        .Int(static_cast<std::int64_t>(summary.clamped_lookups));
    json.Key("peak_live").Int(static_cast<std::int64_t>(summary.peak_live));
    json.Key("live_at_end").Int(static_cast<std::int64_t>(summary.live_at_end));
    json.Key("live_state_bytes")
        .Int(static_cast<std::int64_t>(summary.live_state_bytes));
    json.Key("arena_bytes").Int(static_cast<std::int64_t>(summary.arena_bytes));
    json.Key("qoe_mean").Number(summary.MeanQoe());
    json.Key("utility_mean").Number(summary.MeanUtility());
    json.Key("rebuffer_ratio_mean").Number(summary.MeanRebufferRatio());
    json.Key("switch_rate_mean").Number(summary.MeanSwitchRate());
    json.Key("watch_seconds_mean").Number(summary.MeanWatchSeconds());
    json.Key("rebuffer_slo_violation_fraction")
        .Number(summary.SloViolationFraction());
    json.Key("wall_s").Number(wall_s);
    json.Key("decisions_per_sec").Number(decisions_per_sec);
    json.Key("session_checksum")
        .String(std::to_string(summary.session_checksum));
    if (!summary.regions.empty()) {
      json.Key("regions").BeginArray();
      for (const fleet::RegionStats& region : summary.regions) {
        json.BeginObject();
        json.Key("name").String(region.name);
        json.Key("sessions_started")
            .Int(static_cast<std::int64_t>(region.sessions_started));
        json.Key("sessions_ended")
            .Int(static_cast<std::int64_t>(region.sessions_ended));
        json.Key("sessions_abandoned")
            .Int(static_cast<std::int64_t>(region.sessions_abandoned));
        json.Key("peak_live").Int(static_cast<std::int64_t>(region.peak_live));
        json.Key("congested_ticks").Int(region.congested_ticks);
        json.Key("qoe_mean").Number(region.MeanQoe());
        json.Key("abandon_fraction").Number(region.AbandonFraction());
        json.Key("utilization_mean")
            .Number(region.MeanUtilization(summary.ticks));
        json.Key("congestion_multiplier_mean")
            .Number(region.MeanMultiplier(summary.ticks));
        json.EndObject();
      }
      json.EndArray();
    }
    if (check_threads > 0) {
      json.Key("check_threads").Int(check_threads);
      json.Key("check_decisions_per_sec").Number(check_rate);
      json.Key("identical").Bool(identical);
    }
    if (threads > 1 && single_rate > 0.0) {
      json.Key("single_thread_decisions_per_sec").Number(single_rate);
      json.Key("speedup").Number(decisions_per_sec / single_rate);
      json.Key("parallel_efficiency")
          .Number(decisions_per_sec / single_rate /
                  static_cast<double>(threads));
    }
  });
  tools::DumpMetricsIfRequested(args);
  return identical ? 0 : 1;
}
