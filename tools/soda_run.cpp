// soda_run — stream a session (or a corpus) through any registered
// controller and report QoE.
//
// Examples:
//   soda_run --dataset 4g --sessions 20 --controller soda
//   soda_run --trace my_trace.csv --controller dynamic --predictor window
//   soda_run --mahimahi Verizon-LTE.down --controller soda --timeline
//   soda_run --dataset puffer --controller soda --csv results.csv
//
// Flags:
//   --trace PATH        time_s,mbps CSV trace (one session)
//   --mahimahi PATH     mahimahi packet-delivery trace (one session)
//   --dataset NAME      puffer | 5g | 4g (emulated corpus)
//   --sessions N        corpus size for --dataset (default 10)
//   --controller NAME   soda | soda-cached | hyb | bola | dynamic | mpc |
//                       robustmpc | fugu | rl | throughput | production
//                       (default soda)
//   --predictor NAME    ema | ma | harmonic | window | markov | p10/p25/p50
//                       | robust-ema  (default ema)
//   --ladder NAME       youtube | prime | puffer (default youtube)
//   --trim N            drop the top N ladder rungs
//   --segment S         segment seconds (default 2)
//   --buffer S          max buffer seconds (default 20)
//   --vod               on-demand mode (default: live, latency = buffer)
//   --seed N            corpus seed (default 1)
//   --threads N         evaluation workers; 0 = all cores (default), 1 =
//                       serial. Results are bit-identical for any value.
//   --fault-profile X   impair the network/transport: a built-in profile
//                       (none | flaky-transport | periodic-outage |
//                       cdn-degrade-failover | lossy-cellular) or a path
//                       to a fault-profile config file (see src/fault/)
//   --timeline          print the per-segment timeline (single session)
//   --csv PATH          write per-session metrics CSV
//   --trace-out DIR     write one per-session event-trace JSON into DIR
//                       (observability only: results are bit-identical
//                       with or without tracing)
//   --metrics-out PATH  write the run-level metrics snapshot JSON
//   --fleet             open-loop fleet mode (fleet::RunFleet) instead of
//                       corpus replay: prints one summary row with peak
//                       live sessions, decisions/sec and the rebuffer SLO
//                       violation fraction. Honors --seed, --segment,
//                       --buffer, --ladder/--trim, --threads and
//                       --metrics-out.
//   --fleet-users N     fleet population (default 20000)
//   --fleet-horizon S   fleet arrival horizon in seconds (default 600)
//   --fleet-regions N   closed-loop capacity coupling: map users to N
//                       regional capacity pools that congest as the fleet
//                       grows (0 = open loop, the default)
//   --fleet-region-mbps C  per-region pool capacity in Mbps (default 2000)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "core/registry.hpp"
#include "fault/profile.hpp"
#include "fleet/fleet.hpp"
#include "media/quality.hpp"
#include "net/dataset.hpp"
#include "net/mahimahi.hpp"
#include "net/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qoe/eval.hpp"
#include "qoe/report.hpp"
#include "tools/cli_args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace soda {
namespace {

media::BitrateLadder LadderByName(const std::string& name, long trim) {
  media::BitrateLadder ladder = [&] {
    if (name == "youtube") return media::YoutubeHfr4kLadder();
    if (name == "prime") return media::PrimeVideoProductionLadder();
    if (name == "puffer") return media::PufferPrototypeLadder();
    SODA_ENSURE(false, "unknown ladder '" + name +
                           "'; valid: youtube, prime, puffer");
    return media::YoutubeHfr4kLadder();  // unreachable
  }();
  if (trim > 0) ladder = ladder.WithoutTopRungs(static_cast<int>(trim));
  return ladder;
}

// Open-loop fleet mode: a population of arriving/abandoning/re-joining
// sessions on a shared virtual clock (see src/fleet/), summarized as one
// console row. The corpus-replay flags that make no sense here (traces,
// datasets, controllers beyond the table-served SODA) are simply ignored.
int RunFleetMode(const tools::CliArgs& args) {
  fleet::FleetConfig config;
  config.users =
      static_cast<std::uint64_t>(args.GetLong("fleet-users", 20000));
  config.arrival.horizon_s = args.GetDouble("fleet-horizon", 600.0);
  config.base_seed = static_cast<std::uint64_t>(args.GetLong("seed", 1));
  config.segment_seconds = args.GetDouble("segment", 2.0);
  config.max_buffer_s = args.GetDouble("buffer", 20.0);
  config.ladder =
      LadderByName(args.Get("ladder", "youtube"), args.GetLong("trim", 0));
  const int regions = static_cast<int>(args.GetLong("fleet-regions", 0));
  if (regions > 0) {
    config.regions = fleet::MakeUniformRegions(
        regions, args.GetDouble("fleet-region-mbps", 2000.0));
  }
  const int threads = static_cast<int>(args.GetLong("threads", 0));

  const auto start = std::chrono::steady_clock::now();
  const fleet::FleetSummary summary = fleet::RunFleet(config, threads);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("fleet: users=%llu horizon=%.0fs ladder=%s buffer=%.0fs\n",
              static_cast<unsigned long long>(summary.users),
              config.arrival.horizon_s, config.ladder.ToString().c_str(),
              config.max_buffer_s);
  ConsoleTable table({"metric", "value"});
  table.AddRow({"peak live sessions",
                std::to_string(static_cast<long long>(summary.peak_live))});
  table.AddRow({"sessions started",
                std::to_string(static_cast<long long>(summary.sessions_started))});
  table.AddRow({"sessions ended",
                std::to_string(static_cast<long long>(summary.sessions_ended))});
  table.AddRow({"mean QoE", FormatDouble(summary.MeanQoe(), 4)});
  table.AddRow({"mean utility", FormatDouble(summary.MeanUtility(), 4)});
  table.AddRow(
      {"rebuffer ratio", FormatDouble(summary.MeanRebufferRatio(), 5)});
  table.AddRow({"switch rate", FormatDouble(summary.MeanSwitchRate(), 4)});
  table.AddRow({"rebuffer SLO violations",
                FormatDouble(summary.SloViolationFraction(), 4)});
  table.Print();
  if (!summary.regions.empty()) {
    std::printf("regions (closed-loop capacity pools):\n");
    ConsoleTable region_table({"region", "peak live", "qoe", "abandon",
                               "utilization", "multiplier", "congested"});
    for (const fleet::RegionStats& region : summary.regions) {
      region_table.AddRow(
          {region.name,
           std::to_string(static_cast<long long>(region.peak_live)),
           FormatDouble(region.MeanQoe(), 4),
           FormatDouble(region.AbandonFraction(), 4),
           FormatDouble(region.MeanUtilization(summary.ticks), 3),
           FormatDouble(region.MeanMultiplier(summary.ticks), 3),
           std::to_string(static_cast<long long>(region.congested_ticks)) +
               "/" + std::to_string(static_cast<long long>(summary.ticks))});
    }
    region_table.Print();
  }
  // Timing goes to stderr: stdout stays byte-identical across runs and
  // thread counts (the same determinism check corpus mode documents).
  const double rate =
      wall_s > 0.0 ? static_cast<double>(summary.decisions) / wall_s : 0.0;
  std::fprintf(stderr,
               "fleet: %.0f decisions/sec (%llu decisions in %.2fs), "
               "arena %.1f MB\n",
               rate, static_cast<unsigned long long>(summary.decisions),
               wall_s, static_cast<double>(summary.arena_bytes) / 1e6);
  if (threads > 1) {
    // Thread-scaling report: rerun at one thread (bitwise-identical
    // results by the fleet determinism contract; only the timing differs)
    // and print speedup + parallel efficiency vs that reference.
    const auto ref_start = std::chrono::steady_clock::now();
    const fleet::FleetSummary reference = fleet::RunFleet(config, 1);
    const double ref_wall_s = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - ref_start)
                                  .count();
    const double ref_rate =
        ref_wall_s > 0.0
            ? static_cast<double>(reference.decisions) / ref_wall_s
            : 0.0;
    const double speedup = ref_rate > 0.0 ? rate / ref_rate : 0.0;
    std::fprintf(stderr,
                 "fleet scaling: %d threads %.0f decisions/sec vs 1 thread "
                 "%.0f (speedup %.2fx, parallel efficiency %.0f%%, bitwise "
                 "identical: %s)\n",
                 threads, rate, ref_rate, speedup,
                 100.0 * speedup / static_cast<double>(threads),
                 reference == summary ? "yes" : "NO");
  }

  if (args.Has("metrics-out")) {
    const std::filesystem::path file = args.Get("metrics-out", "");
    if (file.has_parent_path()) {
      std::filesystem::create_directories(file.parent_path());
    }
    std::ofstream out(file);
    SODA_ENSURE(out.good(), "cannot open " + file.string());
    obs::MetricsRegistry::Global().WriteJson(out);
    std::printf("wrote metrics snapshot to %s\n", file.string().c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  const tools::CliArgs args(
      argc, argv,
      {"trace", "mahimahi", "dataset", "sessions", "controller", "predictor",
       "ladder", "trim", "segment", "buffer", "seed", "threads", "csv",
       "fault-profile", "trace-out", "metrics-out", "fleet-users",
       "fleet-horizon", "fleet-regions", "fleet-region-mbps"},
      {"vod", "timeline", "fleet"});

  if (args.Has("fleet")) return RunFleetMode(args);

  // Sessions.
  std::vector<net::ThroughputTrace> sessions;
  if (args.Has("trace")) {
    sessions.push_back(net::LoadTraceCsv(args.Get("trace", "")));
  } else if (args.Has("mahimahi")) {
    net::MahimahiOptions options;
    options.duration_s = 600.0;
    sessions.push_back(
        net::LoadMahimahiFile(args.Get("mahimahi", ""), options));
  } else {
    const std::string name = args.Get("dataset", "puffer");
    net::DatasetKind kind = net::DatasetKind::kPuffer;
    if (name == "5g") kind = net::DatasetKind::k5G;
    else if (name == "4g") kind = net::DatasetKind::k4G;
    else SODA_ENSURE(name == "puffer",
                     "unknown dataset '" + name + "'; valid: puffer, 5g, 4g");
    Rng rng(static_cast<std::uint64_t>(args.GetLong("seed", 1)));
    sessions = net::DatasetEmulator(kind).MakeSessions(
        static_cast<std::size_t>(args.GetLong("sessions", 10)), rng);
  }

  // Tolerant CSV loading counts (not silently drops) malformed rows; warn
  // when the corpus came in with skips so shrinkage is visible.
  {
    const obs::MetricsSnapshot loaded =
        obs::MetricsRegistry::Global().Snapshot();
    const auto skipped = loaded.counters.find("net.trace_csv.rows_skipped");
    if (skipped != loaded.counters.end() && skipped->second > 0) {
      std::fprintf(stderr,
                   "soda_run: warning: skipped %llu malformed trace CSV "
                   "row(s) while loading (see net.trace_csv.* metrics)\n",
                   static_cast<unsigned long long>(skipped->second));
    }
  }

  const media::BitrateLadder ladder =
      LadderByName(args.Get("ladder", "youtube"), args.GetLong("trim", 0));
  const media::VideoModel video(
      ladder, {.segment_seconds = args.GetDouble("segment", 2.0)});

  qoe::EvalConfig config;
  config.sim.max_buffer_s = args.GetDouble("buffer", 20.0);
  config.sim.live = !args.Has("vod");
  config.sim.live_latency_s = config.sim.max_buffer_s;
  config.threads = static_cast<int>(args.GetLong("threads", 0));
  config.base_seed = static_cast<std::uint64_t>(args.GetLong("seed", 1));
  config.utility = [u = media::NormalizedLogUtility(ladder)](double mbps) {
    return u.At(mbps);
  };
  if (args.Has("fault-profile")) {
    config.fault = fault::LoadProfile(args.Get("fault-profile", "none"));
  }
  config.collect_traces = args.Has("trace-out");

  const std::string controller_name = args.Get("controller", "soda");
  const std::string predictor_name = args.Get("predictor", "ema");
  const auto eval_start = std::chrono::steady_clock::now();
  const qoe::EvalResult result = qoe::EvaluateController(
      sessions, [&] { return core::MakeController(controller_name); },
      [&](const net::ThroughputTrace&) {
        return core::MakePredictor(predictor_name);
      },
      video, config);
  const double eval_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    eval_start)
          .count();

  std::printf("controller=%s predictor=%s ladder=%s sessions=%zu buffer=%.0fs "
              "%s threads=%d fault=%s\n",
              result.controller_name.c_str(), predictor_name.c_str(),
              ladder.ToString().c_str(), sessions.size(),
              config.sim.max_buffer_s, config.sim.live ? "live" : "vod",
              util::EffectiveThreads(config.threads, sessions.size()),
              config.fault.name.c_str());
  ConsoleTable table({"metric", "mean", "95% CI"});
  const qoe::QoeAggregate& a = result.aggregate;
  table.AddRow({"QoE", FormatDouble(a.qoe.Mean(), 4),
                FormatDouble(a.qoe.CiHalfWidth95(), 4)});
  table.AddRow({"utility", FormatDouble(a.utility.Mean(), 4),
                FormatDouble(a.utility.CiHalfWidth95(), 4)});
  table.AddRow({"rebuffer ratio", FormatDouble(a.rebuffer_ratio.Mean(), 5),
                FormatDouble(a.rebuffer_ratio.CiHalfWidth95(), 5)});
  table.AddRow({"switch rate", FormatDouble(a.switch_rate.Mean(), 4),
                FormatDouble(a.switch_rate.CiHalfWidth95(), 4)});
  if (!config.fault.IsNoop()) {
    table.AddRow({"wasted Mb", FormatDouble(a.wasted_mb.Mean(), 3),
                  FormatDouble(a.wasted_mb.CiHalfWidth95(), 3)});
    table.AddRow({"retries", FormatDouble(a.retries.Mean(), 3),
                  FormatDouble(a.retries.CiHalfWidth95(), 3)});
    table.AddRow({"outage ratio", FormatDouble(a.outage_ratio.Mean(), 5),
                  FormatDouble(a.outage_ratio.CiHalfWidth95(), 5)});
  }
  table.Print();

  // Evaluation throughput, plus how many decision tables were actually
  // built process-wide: with the shared table cache, N sessions (and N
  // workers) on one stream geometry report 1 build. Goes to stderr —
  // timing is machine-dependent, and stdout stays byte-identical across
  // runs and thread counts (the documented determinism check).
  {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    const auto builds = snapshot.counters.find("core.cached.table_builds");
    std::fprintf(stderr, "eval: %.0f sessions/sec (%zu sessions in %.3fs)",
                 eval_seconds > 0.0
                     ? static_cast<double>(sessions.size()) / eval_seconds
                     : 0.0,
                 sessions.size(), eval_seconds);
    if (builds != snapshot.counters.end()) {
      std::fprintf(stderr, "  decision-table builds: %llu",
                   static_cast<unsigned long long>(builds->second));
    }
    std::fprintf(stderr, "\n");
  }

  if (args.Has("timeline") && sessions.size() == 1) {
    const abr::ControllerPtr controller = core::MakeController(controller_name);
    const predict::PredictorPtr predictor = core::MakePredictor(predictor_name);
    const sim::SessionLog log = [&] {
      if (config.fault.IsNoop()) {
        return sim::RunSession(sessions[0], *controller, *predictor, video,
                               config.sim);
      }
      // Mirror the evaluator's fault path: impaired primary, faults seeded
      // from the session's position in the corpus (index 0 here).
      const net::ThroughputTrace impaired =
          config.fault.plan.TraceIsUnchanged()
              ? sessions[0]
              : config.fault.plan.ApplyToTrace(sessions[0]);
      const fault::SessionFaults faults = fault::MakeSessionFaults(
          config.fault, sessions[0],
          qoe::FaultSessionSeed(config.base_seed, 0));
      return sim::RunSession(impaired, *controller, *predictor, video,
                             config.sim, faults);
    }();
    std::printf("\ntimeline (segment, time, rung, bitrate, buffer, "
                "rebuffer):\n");
    for (const auto& s : log.segments) {
      std::printf("  %4lld  t=%7.1fs  rung=%d  %5.2f Mb/s  buf=%5.2fs%s%s%s\n",
                  static_cast<long long>(s.index), s.request_s, s.rung,
                  s.bitrate_mbps, s.buffer_after_s,
                  s.rebuffer_s > 1e-9 ? "  [REBUFFER]" : "",
                  s.attempts > 1 ? "  [RETRY]" : "",
                  s.failed_over ? "  [FAILOVER]" : "");
    }
  }

  if (args.Has("csv")) {
    qoe::WritePerSessionCsv({result}, args.Get("csv", ""));
    std::printf("wrote %s\n", args.Get("csv", "").c_str());
  }

  if (args.Has("trace-out")) {
    const std::filesystem::path dir = args.Get("trace-out", "");
    std::filesystem::create_directories(dir);
    for (const obs::SessionTrace& trace : result.traces) {
      const std::filesystem::path file =
          dir / ("trace_session_" + std::to_string(trace.session_index) +
                 ".json");
      std::ofstream out(file);
      SODA_ENSURE(out.good(), "cannot open " + file.string());
      obs::WriteTraceJson(out, trace);
    }
    std::printf("wrote %zu session trace(s) to %s\n", result.traces.size(),
                dir.string().c_str());
  }

  if (args.Has("metrics-out")) {
    const std::filesystem::path file = args.Get("metrics-out", "");
    if (file.has_parent_path()) {
      std::filesystem::create_directories(file.parent_path());
    }
    std::ofstream out(file);
    SODA_ENSURE(out.good(), "cannot open " + file.string());
    obs::MetricsRegistry::Global().WriteJson(out);
    std::printf("wrote metrics snapshot to %s\n", file.string().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace soda

int main(int argc, char** argv) {
  try {
    return soda::Run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "soda_run: %s\n", error.what());
    return 1;
  }
}
