#!/usr/bin/env python3
"""Report-only comparison of two BENCH_eval.json perf reports.

Usage: tools/bench_delta.py BASELINE CANDIDATE

Prints the sessions/sec delta per controller and thread count, the QoE
deltas, the serving-throughput block (DecisionService decisions/sec,
batch latency, quantized memory cut and QoE delta), the candidate's
shared-link scaling, fairness-workload, fleet-scaling and fleet
regional-capacity tables, and the thread-scaling blocks
(fleet_thread_scaling with the batched-vs-scalar decision-kernel micro,
serving_thread_scaling) with parallel-efficiency regression flags.
Blocks absent from either report are skipped; a block the baseline has
but the candidate lost is called out with a warning (a silently dropped
block usually means the bench was truncated or a report section was
renamed). Always exits 0: timing on shared CI runners is too noisy to
gate on, so this is an eyeballing aid, not a check. Structural fields
(QoE, bitwise-identity flags) should match the baseline bit-for-bit when
the corpus seed is unchanged; timing fields are machine-dependent.
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as error:
        print(f"bench_delta: cannot read {path}: {error}")
        return None


def throughput_map(report):
    """controller -> {threads: sessions_per_sec}"""
    out = {}
    for entry in report.get("controllers", []):
        out[entry["controller"]] = {
            point["threads"]: point["sessions_per_sec"]
            for point in entry.get("throughput", [])
        }
    return out


def qoe_map(report):
    return {
        entry["controller"]: entry.get("qoe")
        for entry in report.get("controllers", [])
    }


# Top-level report blocks a candidate is expected to carry forward once a
# baseline has them. Used for the missing-block warning only, never to gate.
KNOWN_BLOCKS = (
    "controllers",
    "serving_throughput",
    "serving_thread_scaling",
    "shared_link_scaling",
    "fairness_scaling",
    "fleet_scaling",
    "fleet_thread_scaling",
    "fleet_region_capacity",
)


def warn_missing_blocks(baseline, candidate):
    missing = [name for name in KNOWN_BLOCKS
               if baseline.get(name) and not candidate.get(name)]
    for name in missing:
        print(f"WARNING: baseline has a '{name}' block the candidate lacks "
              "(truncated bench run or renamed section?)")


def thread_scaling_table(name, candidate_block, baseline_block, intro):
    """Shared printer for fleet/serving thread-scaling blocks."""
    print(f"\n{name} ({intro}):")
    base_points = {
        point["threads"]: point
        for point in (baseline_block or {}).get("threads", [])
    }
    hw = candidate_block.get("hardware_threads")
    if hw:
        print(f"  hardware_threads={hw} (efficiency beyond {hw} threads is "
              "oversubscription, not regression)")
    print("  threads   decisions/sec   vs baseline   efficiency   identical")
    for point in candidate_block.get("threads", []):
        base = base_points.get(point["threads"])
        if base and base.get("decisions_per_sec"):
            delta = 100.0 * (point["decisions_per_sec"] /
                             base["decisions_per_sec"] - 1.0)
            delta_text = f"{delta:+10.1f}%"
        else:
            delta_text = "       n/a"
        eff = point.get("parallel_efficiency", 0.0)
        eff_marker = ""
        base_eff = (base or {}).get("parallel_efficiency")
        # Report-only flag: efficiency visibly below the baseline's at the
        # same thread count (beyond timing noise) is worth a look.
        if base_eff and eff < 0.8 * base_eff:
            eff_marker = "  *** EFFICIENCY REGRESSED ***"
        ident = point.get("identical_output")
        ident_marker = "" if ident else "  *** NOT BIT-IDENTICAL ***"
        print(f"  {point['threads']:7d}  {point['decisions_per_sec']:14.0f}  "
              f"{delta_text}  {eff:10.2f}  {ident}{ident_marker}{eff_marker}")


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip())
        return 0
    baseline = load(sys.argv[1])
    candidate = load(sys.argv[2])
    if baseline is None or candidate is None:
        return 0
    warn_missing_blocks(baseline, candidate)

    print(f"baseline:  {sys.argv[1]} "
          f"(sessions={baseline.get('sessions')}, quick={baseline.get('quick')})")
    print(f"candidate: {sys.argv[2]} "
          f"(sessions={candidate.get('sessions')}, quick={candidate.get('quick')})")
    if baseline.get("quick") != candidate.get("quick") or \
            baseline.get("sessions") != candidate.get("sessions"):
        print("note: corpus sizes differ; sessions/sec deltas are not "
              "like-for-like")

    base_tp = throughput_map(baseline)
    cand_tp = throughput_map(candidate)
    print("\nsessions/sec (candidate vs baseline):")
    for controller, points in cand_tp.items():
        for threads, rate in sorted(points.items()):
            base_rate = base_tp.get(controller, {}).get(threads)
            if base_rate:
                delta = 100.0 * (rate / base_rate - 1.0)
                print(f"  {controller:14s} threads={threads:<3d} "
                      f"{rate:10.1f}  vs {base_rate:10.1f}  ({delta:+6.1f}%)")
            else:
                print(f"  {controller:14s} threads={threads:<3d} "
                      f"{rate:10.1f}  (no baseline point)")

    base_qoe = qoe_map(baseline)
    print("\nQoE (should be bit-identical for an unchanged seed/corpus):")
    for controller, qoe in qoe_map(candidate).items():
        base = base_qoe.get(controller)
        marker = "" if base == qoe else "  *** DIFFERS ***"
        print(f"  {controller:14s} {qoe:.6f}  baseline "
              f"{'n/a' if base is None else f'{base:.6f}'}{marker}")

    serving = candidate.get("serving_throughput")
    if serving:
        base_serving = baseline.get("serving_throughput") or {}

        def serving_line(report, block, label):
            if not block:
                print(f"  {label}: n/a")
                return
            print(f"  {label}: {block['decisions_per_sec']:12.0f} dec/s  "
                  f"batch p50/p99 {block.get('batch_us_p50', 0.0):.1f}/"
                  f"{block.get('batch_us_p99', 0.0):.1f} us  "
                  f"memory cut x{block.get('table_memory_ratio', 0.0):.1f}  "
                  f"shadow {block.get('shadow_mismatches', 0)}/"
                  f"{block.get('shadow_checks', 0)} mismatches  "
                  f"qdelta {report.get('quantized_qoe_delta', 0.0):+.6f}")

        print("\nserving throughput (DecisionService batch replay; "
              "quantized_qoe_delta should stay within ±0.005 and shadow "
              "mismatches at ~0):")
        serving_line(candidate, serving, "candidate")
        serving_line(baseline, base_serving, "baseline ")
        if base_serving.get("decisions_per_sec"):
            delta = 100.0 * (serving["decisions_per_sec"] /
                             base_serving["decisions_per_sec"] - 1.0)
            print(f"  decisions/sec delta: {delta:+.1f}%")

    serving_threads = candidate.get("serving_thread_scaling")
    if serving_threads:
        thread_scaling_table(
            "serving thread scaling",
            serving_threads,
            baseline.get("serving_thread_scaling"),
            "DecisionService::DecideBatch; identical must be true at every "
            "thread count, efficiency is report-only")

    scaling = candidate.get("shared_link_scaling")
    if scaling:
        print("\nshared-link scaling (candidate):")
        print("  players   events   ref ns/event   inc ns/event   speedup  "
              "identical")
        for row in scaling:
            print(f"  {row['players']:7d}  {row['events']:7d}  "
                  f"{row['ns_per_event_reference']:13.0f}  "
                  f"{row['ns_per_event_incremental']:13.0f}  "
                  f"{row['speedup']:7.2f}  {row['identical_output']}")

    fairness = candidate.get("fairness_scaling")
    if fairness:
        base_rows = {
            row["players"]: row
            for row in (baseline.get("fairness_scaling") or [])
        }
        print("\nfairness workload (candidate; Jain columns should match the "
              "baseline bit-for-bit):")
        print("  players  leavers  jain_bitrate  jain_bytes  rebuffer_s  "
              "sessions/sec  speedup  identical")
        for row in fairness:
            base = base_rows.get(row["players"])
            jain_marker = ""
            if base is not None and (base.get("jain_bitrate") !=
                                     row["jain_bitrate"] or
                                     base.get("jain_bytes") !=
                                     row["jain_bytes"]):
                jain_marker = "  *** JAIN DIFFERS ***"
            print(f"  {row['players']:7d}  {row['early_leavers']:7d}  "
                  f"{row['jain_bitrate']:12.6f}  {row['jain_bytes']:10.6f}  "
                  f"{row['mean_rebuffer_s']:10.4f}  "
                  f"{row['sessions_per_sec']:12.1f}  {row['speedup']:7.2f}  "
                  f"{row['identical_output']}{jain_marker}")

    fleet = candidate.get("fleet_scaling")
    if fleet:
        base_fleet = baseline.get("fleet_scaling") or {}
        checksum_marker = ""
        if base_fleet.get("session_checksum") is not None and \
                base_fleet.get("session_checksum") != \
                fleet.get("session_checksum"):
            checksum_marker = "  *** CHECKSUM DIFFERS ***"
        print("\nfleet scaling (open-loop population simulator; "
              "identical_output must be true at every thread count, and the "
              "session checksum should match the baseline bit-for-bit when "
              "the seed/config is unchanged):")
        print(f"  users={fleet.get('users')} horizon={fleet.get('horizon_s')}s "
              f"shards={fleet.get('shards')} "
              f"peak_live={fleet.get('peak_live')} "
              f"decisions={fleet.get('decisions')}")
        print(f"  qoe_mean {fleet.get('qoe_mean', 0.0):.6f}  "
              f"slo_violation_fraction "
              f"{fleet.get('rebuffer_slo_violation_fraction', 0.0):.6f}  "
              f"checksum {fleet.get('session_checksum')}{checksum_marker}")
        base_points = {
            point["threads"]: point
            for point in base_fleet.get("threads", [])
        }
        print("  threads   decisions/sec   vs baseline   identical")
        for point in fleet.get("threads", []):
            base = base_points.get(point["threads"])
            if base and base.get("decisions_per_sec"):
                delta = 100.0 * (point["decisions_per_sec"] /
                                 base["decisions_per_sec"] - 1.0)
                delta_text = f"{delta:+10.1f}%"
            else:
                delta_text = "       n/a"
            ident = point.get("identical_output")
            ident_marker = "" if ident else "  *** NOT BIT-IDENTICAL ***"
            print(f"  {point['threads']:7d}  {point['decisions_per_sec']:14.0f}  "
                  f"{delta_text}  {ident}{ident_marker}")

    fleet_threads = candidate.get("fleet_thread_scaling")
    if fleet_threads:
        micro = fleet_threads.get("kernel_micro")
        if micro:
            speedup = micro.get("speedup", 0.0)
            base_micro = (baseline.get("fleet_thread_scaling") or
                          {}).get("kernel_micro") or {}
            base_speedup = base_micro.get("speedup")
            speedup_marker = ""
            # The PR's floor: the batched kernel should beat the scalar
            # loop by >= 1.3x on the fleet's default geometry.
            if speedup < 1.3:
                speedup_marker = "  *** BELOW 1.3x TARGET ***"
            ident_marker = ("" if micro.get("bitwise_identical")
                            else "  *** NOT BIT-IDENTICAL ***")
            print("\ndecision-kernel micro (batched vs scalar lookup, "
                  "min-of-reps):")
            print(f"  speedup x{speedup:.2f} "
                  f"(baseline "
                  f"{'n/a' if base_speedup is None else f'x{base_speedup:.2f}'})"
                  f"{speedup_marker}")
            print(f"  scalar {micro.get('scalar_ns_per_lookup', 0.0):.1f} "
                  f"ns/lookup, batched "
                  f"{micro.get('batched_ns_per_lookup', 0.0):.1f} ns/lookup "
                  f"over {micro.get('inputs')} inputs")
            print(f"  bitwise_identical {micro.get('bitwise_identical')}"
                  f"{ident_marker}  boundary_inversion "
                  f"{micro.get('boundary_inversion')}")
        thread_scaling_table(
            "fleet thread scaling",
            fleet_threads,
            baseline.get("fleet_thread_scaling"),
            "fleet::RunFleet batched tick loop; identical must be true at "
            "every thread count, efficiency is report-only")

    region = candidate.get("fleet_region_capacity")
    if region:
        base_region = baseline.get("fleet_region_capacity") or {}
        zero_ok = region.get("zero_coupling_identical")
        zero_marker = "" if zero_ok else "  *** OPEN-LOOP MISMATCH ***"
        print("\nfleet regional capacity (closed-loop coupling; "
              "identical_output must be true at every capacity, "
              "zero_coupling_identical must be true, and qoe_mean should "
              "match the baseline bit-for-bit for an unchanged seed):")
        print(f"  users={region.get('users')} "
              f"horizon={region.get('horizon_s')}s "
              f"shards={region.get('shards')} "
              f"regions={region.get('regions')}  "
              f"open_loop_qoe {region.get('open_loop_qoe', 0.0):.6f}  "
              f"zero_coupling_identical {zero_ok}{zero_marker}")
        base_rows = {
            row["region_mbps"]: row
            for row in base_region.get("capacities", [])
        }
        print("  region_mbps   qoe_mean   abandon   util   mult   congested  "
              "identical")
        for row in region.get("capacities", []):
            base = base_rows.get(row["region_mbps"])
            qoe_marker = ""
            if base is not None and base.get("qoe_mean") != row["qoe_mean"]:
                qoe_marker = "  *** QOE DIFFERS ***"
            ident = row.get("identical_output")
            ident_marker = "" if ident else "  *** NOT BIT-IDENTICAL ***"
            print(f"  {row['region_mbps']:11.0f}  {row['qoe_mean']:9.4f}  "
                  f"{row['abandon_fraction']:8.4f}  "
                  f"{row['utilization_mean']:5.2f}  "
                  f"{row['congestion_multiplier_mean']:5.3f}  "
                  f"{row['congested_tick_fraction']:9.4f}  "
                  f"{ident}{ident_marker}{qoe_marker}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
