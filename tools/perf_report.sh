#!/usr/bin/env bash
# Regenerates the checked-in BENCH_solver.json / BENCH_eval.json perf
# reports from a clean Release build. Run from anywhere:
#
#   tools/perf_report.sh [--quick]
#
# --quick (also used by CI's perf-smoke job) shrinks the corpus and timing
# repetitions. Timing fields (ns/decision, sessions/sec) are
# machine-dependent; structural fields (sequences evaluated, QoE, deltas)
# are deterministic for the built-in seed.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-perf"

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" --target bench_perf_report -j "$(nproc)"
"$build/bench/bench_perf_report" --out-dir "$repo" "$@"
