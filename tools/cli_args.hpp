// Minimal command-line flag parsing shared by the CLI tools, plus the
// --json / --metrics export plumbing every loadgen repeats. Supports
// "--flag value" and boolean "--flag"; unknown flags are errors.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/ensure.hpp"
#include "util/json_writer.hpp"

namespace soda::tools {

class CliArgs {
 public:
  // `boolean_flags` take no value. Throws std::invalid_argument on unknown
  // flags or missing values.
  CliArgs(int argc, char** argv, const std::set<std::string>& known_flags,
          const std::set<std::string>& boolean_flags) {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      SODA_ENSURE(flag.rfind("--", 0) == 0, "expected --flag, got: " + flag);
      const std::string name = flag.substr(2);
      if (boolean_flags.count(name) != 0) {
        values_[name] = "true";
        continue;
      }
      SODA_ENSURE(known_flags.count(name) != 0, "unknown flag: " + flag);
      SODA_ENSURE(i + 1 < argc, "missing value for " + flag);
      values_[name] = argv[++i];
    }
  }

  [[nodiscard]] bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }
  [[nodiscard]] std::string Get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] long GetLong(const std::string& name, long fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stol(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

// If `--json PATH` was passed, streams one JSON object to PATH whose body
// is produced by `fill(json)`; BeginObject/EndObject and the trailing
// newline are handled here. No-op when the flag is absent.
template <typename Fill>
void WriteJsonIfRequested(const CliArgs& args, const Fill& fill) {
  if (!args.Has("json")) return;
  std::ofstream out(args.Get("json", ""));
  SODA_ENSURE(out.good(), "cannot open --json output file");
  util::JsonWriter json(out);
  json.BeginObject();
  fill(json);
  json.EndObject();
  out << '\n';
}

// If `--metrics PATH` was passed, dumps the full process metrics registry
// snapshot (the CI artifact) to PATH. No-op when the flag is absent.
inline void DumpMetricsIfRequested(const CliArgs& args) {
  if (!args.Has("metrics")) return;
  std::ofstream out(args.Get("metrics", ""));
  SODA_ENSURE(out.good(), "cannot open --metrics output file");
  obs::MetricsRegistry::Global().WriteJson(out);
}

// Counter lookup over a metrics snapshot; absent counters read 0.
[[nodiscard]] inline std::uint64_t SnapshotCounter(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace soda::tools
