// Minimal command-line flag parsing shared by the CLI tools.
// Supports "--flag value" and boolean "--flag"; unknown flags are errors.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/ensure.hpp"

namespace soda::tools {

class CliArgs {
 public:
  // `boolean_flags` take no value. Throws std::invalid_argument on unknown
  // flags or missing values.
  CliArgs(int argc, char** argv, const std::set<std::string>& known_flags,
          const std::set<std::string>& boolean_flags) {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      SODA_ENSURE(flag.rfind("--", 0) == 0, "expected --flag, got: " + flag);
      const std::string name = flag.substr(2);
      if (boolean_flags.count(name) != 0) {
        values_[name] = "true";
        continue;
      }
      SODA_ENSURE(known_flags.count(name) != 0, "unknown flag: " + flag);
      SODA_ENSURE(i + 1 < argc, "missing value for " + flag);
      values_[name] = argv[++i];
    }
  }

  [[nodiscard]] bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }
  [[nodiscard]] std::string Get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double GetDouble(const std::string& name,
                                 double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] long GetLong(const std::string& name, long fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stol(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace soda::tools
